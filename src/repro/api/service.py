"""``TuningService`` — serving many concurrent ``tune()`` calls per process.

Concurrency model (see the ROADMAP design notes): every
``(schema, CostingSpec)`` resolves to one :class:`SchemaContext` whose lock
serializes *cache-mutating* pipelines — template builds, gamma-matrix column
registration, tensor extension and the costing memos are all shared state,
and per-request determinism is guaranteed by running each request's pipeline
atomically against it.  Requests for different schemas (or different costing
specs) hold different locks and genuinely run in parallel; requests for the
same schema queue on the lock but still share every template, matrix and
tensor the earlier requests built, which is where the service wins over a
process-per-request design.  Results are deterministic per request: the
recommendation, objective and per-statement costs do not depend on how
concurrent requests interleave (call-count diagnostics may — a warm cache
legitimately reports fewer template builds).

Interactive sessions go through :meth:`TuningService.open_session`: the
returned :class:`TuningSession` wraps the delta-BIP
:class:`~repro.core.interactive.InteractiveTuningSession` machinery, takes
the context lock around every call, and normalises every outcome into a
:class:`TuningResult`.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Iterable


from repro.api.registry import canonical_name, make_advisor
from repro.api.result import TuningResult
from repro.api.specs import TuningRequest
from repro.api.tuner import (
    SchemaContext,
    Tuner,
    _resolve_candidates,
    build_session_result,
    tune_in_context,
)
from repro.core.interactive import InteractiveTuningSession
from repro.exceptions import ServerOverloaded
from repro.obs.metrics import WAIT_BUCKETS, histogram_quantiles, use_registry
from repro.obs.profile import note_queue_wait

__all__ = ["TuningService", "TuningSession"]


def _renamed_constraint(constraint, renames: "dict[str, str]", workload):
    """Follow a statement rename through name-referencing constraints.

    Auto-namespacing renames workload statements; a constraint that targets
    statements *by name* (``QueryCostConstraint.query``,
    ``QuerySpeedupGenerator.reference_costs``) must follow, or the rule would
    silently stop matching (speedup generators skip unknown names) or fail
    with a misleading error (query-cost constraints on absent statements).
    """
    from repro.core.constraints import (
        QueryCostConstraint,
        QuerySpeedupGenerator,
        SoftConstraint,
    )

    if isinstance(constraint, SoftConstraint):
        inner = _renamed_constraint(constraint.inner, renames, workload)
        if inner is constraint.inner:
            return constraint
        return SoftConstraint(inner, target=constraint.target)
    if isinstance(constraint, QueryCostConstraint):
        new_name = renames.get(constraint.query.name)
        if new_name is None:
            return constraint
        for statement in workload:
            if statement.query.name == new_name:
                return replace(constraint, query=statement.query)
        return constraint  # rename target not in this workload: leave as-is
    if isinstance(constraint, QuerySpeedupGenerator):
        if not renames.keys() & constraint.reference_costs.keys():
            return constraint
        return replace(constraint, reference_costs={
            renames.get(name, name): cost
            for name, cost in constraint.reference_costs.items()})
    return constraint


class TuningService:
    """A process-wide facade serving concurrent declarative tuning requests.

    Args:
        tuner: The underlying :class:`Tuner` (owns the per-schema contexts);
            a fresh one is created when omitted, and sharing one between a
            service and direct ``tuner.tune`` callers is safe as long as the
            direct callers do not run concurrently with the service.
        max_workers: Thread count for :meth:`tune_many` / :meth:`submit`
            (``None`` lets :class:`ThreadPoolExecutor` pick its default).
        namespace_statements: When ``True``, a workload whose statement names
            collide with structurally different statements already admitted
            to its schema context is *cloned* under request-qualified names
            (content-addressed, deterministic) instead of being rejected with
            :class:`WorkloadError` — the behaviour a network server wants so
            arbitrary client traffic can share one context.  The default
            keeps the embedded API's loud rejection.
        max_contexts: LRU cap on live schema contexts (forwarded to the
            service's own :class:`Tuner`; pass the knob to your Tuner
            directly when supplying one).
        context_ttl_s: Idle TTL for schema contexts (same forwarding rule).
        max_pending: Admission-control bound on requests admitted but not
            yet finished (in-flight solves plus the thread-pool queue).
            When the bound is hit, :meth:`tune` / :meth:`submit` raise
            :class:`~repro.exceptions.ServerOverloaded` instead of queueing
            — the HTTP front-end maps it to ``429`` + ``Retry-After``.
            ``None`` (default) admits everything.
        retry_after_s: Backoff hint attached to overload rejections.
        trace_store_size: Capacity of the service Tuner's trace store
            (forwarded; 0 disables retention).
        slow_threshold_ms: Slow-request pinning threshold for the trace
            store (forwarded to the service's own Tuner).
        profile_every: Sampled-``cProfile`` cadence (forwarded to the
            service's own Tuner).
    """

    def __init__(self, tuner: Tuner | None = None,
                 max_workers: int | None = None, *,
                 namespace_statements: bool = False,
                 max_contexts: int | None = None,
                 context_ttl_s: float | None = None,
                 max_pending: int | None = None,
                 retry_after_s: float = 1.0,
                 trace_store_size: int | None = None,
                 slow_threshold_ms: float | None = None,
                 profile_every: int | None = None):
        if tuner is not None and (max_contexts is not None
                                  or context_ttl_s is not None
                                  or trace_store_size is not None
                                  or slow_threshold_ms is not None
                                  or profile_every is not None):
            raise ValueError(
                "max_contexts/context_ttl_s/trace_store_size/"
                "slow_threshold_ms/profile_every configure the service's "
                "own Tuner; when supplying a Tuner, set them on it directly")
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be non-negative (or None)")
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        tuner_kwargs: dict[str, Any] = {}
        if trace_store_size is not None:
            tuner_kwargs["trace_store_size"] = trace_store_size
        if slow_threshold_ms is not None:
            tuner_kwargs["slow_threshold_ms"] = slow_threshold_ms
        if profile_every is not None:
            tuner_kwargs["profile_every"] = profile_every
        self._tuner = tuner or Tuner(max_contexts=max_contexts,
                                     context_ttl_s=context_ttl_s,
                                     **tuner_kwargs)
        self._max_workers = max_workers
        self._namespace_statements = bool(namespace_statements)
        self._max_pending = max_pending
        self.retry_after_s = retry_after_s
        self._executor: ThreadPoolExecutor | None = None
        #: Admission control still runs on a plain int under its own lock
        #: (the compare-and-increment must be atomic); every *monotonic*
        #: serving counter lives in the tuner's metrics registry, so one
        #: ``snapshot()`` reads them all consistently and ``/v1/metrics``
        #: exposes them for free.
        self._stats_lock = threading.Lock()
        self._pending = 0
        metrics = self._tuner.metrics
        self._namespaced_metric = metrics.counter(
            "repro_namespaced_requests_total",
            "Requests whose statements were auto-namespaced")
        self._reaped_metric = metrics.counter(
            "repro_sessions_reaped_total",
            "Interactive sessions reaped by idle TTL")
        self._rejected_metric = metrics.counter(
            "repro_overload_rejected_total",
            "Requests rejected by admission control (429)")
        self._retries_metric = metrics.counter(
            "repro_result_retries_total",
            "Reliability-layer retries reported by served results")
        self._degraded_metric = metrics.counter(
            "repro_degraded_total",
            "Served results flagged degraded (lost shards)")
        self._pending_metric = metrics.gauge(
            "repro_pending_requests",
            "Requests admitted but not yet finished")
        self._queue_wait_metric = metrics.histogram(
            "repro_queue_wait_seconds",
            "Seconds requests waited in the service pool queue",
            buckets=WAIT_BUCKETS)
        #: Set on pool threads whose request already holds a pending slot
        #: (acquired at submit() time), so tune() does not acquire a second.
        self._slot_held = threading.local()

    # ---------------------------------------------------------------- accessors
    @property
    def tuner(self) -> Tuner:
        return self._tuner

    def context_for(self, schema, costing=None) -> SchemaContext:
        """The shared per-schema context (exposed for inspection/tests)."""
        return self._tuner.context_for(schema, costing)

    @property
    def namespace_statements(self) -> bool:
        return self._namespace_statements

    @property
    def max_pending(self) -> int | None:
        return self._max_pending

    @max_pending.setter
    def max_pending(self, value: int | None) -> None:
        """Mutable at runtime so operators (and tests) can shed or restore
        load without restarting the service."""
        if value is not None and value < 0:
            raise ValueError("max_pending must be non-negative (or None)")
        self._max_pending = value

    @property
    def pending(self) -> int:
        with self._stats_lock:
            return self._pending

    # -------------------------------------------------------- admission control
    def _acquire_slot(self) -> None:
        with self._stats_lock:
            limit = self._max_pending
            if limit is not None and self._pending >= limit:
                retry_after = self.retry_after_s
                pending = self._pending
            else:
                self._pending += 1
                self._pending_metric.set(float(self._pending))
                return
        self._rejected_metric.inc()
        raise ServerOverloaded(
            f"Tuning service pending-work queue is full "
            f"({pending} in flight, max_pending={limit}); "
            f"retry after {retry_after} s", retry_after_s=retry_after)

    def _release_slot(self) -> None:
        with self._stats_lock:
            self._pending -= 1
            self._pending_metric.set(float(self._pending))

    def note_sessions_reaped(self, count: int) -> None:
        """Record idle sessions reaped by a front-end (e.g. the HTTP server).

        Sessions live above the service (the server maps ids to
        :class:`TuningSession` objects), but their lifecycle counters belong
        with the other serving statistics so one ``stats()`` poll tells the
        whole story.
        """
        if count <= 0:
            return
        self._reaped_metric.inc(float(count))

    def stats(self) -> dict[str, Any]:
        """Machine-readable service counters (the ``/v1/stats`` payload).

        All monotonic counters come out of ONE registry ``snapshot()`` —
        a single lock acquisition — so a poll racing concurrent
        ``tune_many`` traffic sees a consistent set: no counter in the
        payload can come from a later instant than another.

        ``faults_injected`` counts plan firings observed *in this process*;
        worker-side injections are counted by the worker's plan copy and
        surface here as part of ``retries`` / ``degraded_results`` instead.
        """
        snap = self._tuner.metrics.snapshot()

        def total(name: str) -> float:
            return sum(snap.get(name, {}).values())

        # requests_served keeps its legacy meaning: requests that returned a
        # result (the facade also counts errored requests, under
        # status="error").
        served = sum(value
                     for key, value in snap.get("repro_requests_total",
                                                {}).items()
                     if key[2] != "error")
        pending = snap.get("repro_pending_requests", {}).get((), 0.0)
        plan = self._tuner.effective_fault_plan()

        # Streaming latency SLOs: per-advisor p50/p95/p99 interpolated from
        # the full bucket data of the same atomic snapshot, with the slowest
        # request's exemplar trace id for drill-down into /v1/traces.
        latency_slo: dict[str, Any] = {}
        for labels, sample in snap.get("repro_request_seconds", {}).items():
            advisor = labels[0] if labels else ""
            p50, p95, p99 = histogram_quantiles(sample, (0.5, 0.95, 0.99))
            row: dict[str, Any] = {
                "count": int(sample.get("count", 0)),
                "p50_ms": None if p50 is None else round(p50 * 1000.0, 3),
                "p95_ms": None if p95 is None else round(p95 * 1000.0, 3),
                "p99_ms": None if p99 is None else round(p99 * 1000.0, 3),
            }
            exemplar = sample.get("exemplar")
            if exemplar is not None:
                row["exemplar_trace_id"] = exemplar["trace_id"]
            latency_slo[advisor] = row

        return {
            **self._tuner.context_stats(),
            "namespace_statements": self._namespace_statements,
            "requests_served": int(served),
            "namespaced_requests": int(
                total("repro_namespaced_requests_total")),
            "sessions_reaped": int(total("repro_sessions_reaped_total")),
            "pending": int(pending),
            "max_pending": self._max_pending,
            "rejected_overload": int(total("repro_overload_rejected_total")),
            "retries": int(total("repro_result_retries_total")),
            "degraded_results": int(total("repro_degraded_total")),
            "faults_injected": 0 if plan is None else plan.injected_total,
            "latency_slo": latency_slo,
        }

    # ------------------------------------------------------------------ tuning
    def tune(self, request: TuningRequest) -> TuningResult:
        """Serve one request, atomically against its schema context.

        Raises :class:`~repro.exceptions.ServerOverloaded` without touching
        the schema context when admission control (``max_pending``) rejects
        the request.
        """
        if getattr(self._slot_held, "held", False):
            return self._tune_slotted(request)
        self._acquire_slot()
        try:
            return self._tune_slotted(request)
        finally:
            self._release_slot()

    def _tune_slotted(self, request: TuningRequest) -> TuningResult:
        """The admitted tune path (the caller holds a pending slot)."""
        context = self._tuner.context_for(request.schema, request.costing)
        with use_registry(self._tuner.metrics), context.lock:
            request, renames = self._admitted(request, context)
            result = tune_in_context(
                request, context, namespaced=bool(renames),
                fault_plan=self._tuner.effective_fault_plan(),
                tracing=self._tuner.tracing, metrics=self._tuner.metrics,
                trace_store=self._tuner.trace_store,
                profiler=self._tuner.profiler,
                profile_memory=self._tuner.profile_memory)
        # The per-request family (repro_requests_total) was recorded inside
        # tune_in_context; only the service-level views remain.
        if renames:
            self._namespaced_metric.inc()
        if result.diagnostics.retries:
            self._retries_metric.inc(float(result.diagnostics.retries))
        if result.diagnostics.degraded:
            self._degraded_metric.inc()
        return result

    def _admitted(self, request: TuningRequest, context: SchemaContext
                  ) -> tuple[TuningRequest, dict[str, str]]:
        """Apply the admission policy (caller holds the context lock).

        Returns the (possibly rewritten) request plus the statement rename
        map — empty when nothing was namespaced.
        """
        if not self._namespace_statements:
            return request, {}
        workload, renames = context.namespaced_workload(request.workload)
        if not renames:
            return request, {}
        constraints = tuple(
            _renamed_constraint(constraint, renames, workload)
            for constraint in request.constraints)
        return replace(request, workload=workload,
                       constraints=constraints), renames

    def submit(self, request: TuningRequest) -> "Future[TuningResult]":
        """Queue a request on the service's thread pool.

        The pending slot is acquired *here* — queued-but-unstarted work
        counts against ``max_pending``, which is the whole point of
        admission control — and released when the future settles.  The pool
        thread still goes through ``self.tune`` (the overridable entry
        point); the thread-local marker keeps it from taking a second slot.
        """
        self._acquire_slot()
        queued_at = time.perf_counter()

        def run_admitted() -> TuningResult:
            # The gap between admission and a pool thread picking the
            # request up is queue wait: recorded in the service-wide
            # histogram and noted thread-locally so the request's root span
            # carries it as ``queue_wait_ms``.
            waited = time.perf_counter() - queued_at
            self._queue_wait_metric.observe(waited)
            note_queue_wait(waited)
            self._slot_held.held = True
            try:
                return self.tune(request)
            finally:
                self._slot_held.held = False

        # Pool threads do not inherit contextvars from the submitting
        # thread; copying the context here carries a caller's pending trace
        # id (trace_context / the HTTP request scope) into the solve.
        ctx = contextvars.copy_context()
        try:
            future = self._ensure_executor().submit(ctx.run, run_admitted)
        except BaseException:
            self._release_slot()
            raise
        future.add_done_callback(lambda _future: self._release_slot())
        return future

    def tune_many(self, requests: Iterable[TuningRequest]
                  ) -> list[TuningResult]:
        """Serve many requests concurrently; results in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ---------------------------------------------------------------- sessions
    def open_session(self, request: TuningRequest) -> "TuningSession":
        """Start an interactive (incremental re-tuning) session.

        Only the CoPhy strategy supports delta-BIP re-tuning, so the request
        must name it (or leave the advisor unset).
        """
        spec = request.resolved_advisor()
        if canonical_name(spec.name) != "cophy":
            raise ValueError(
                f"Interactive sessions require the 'cophy' advisor; the "
                f"request asks for {spec.name!r}")
        context = self._tuner.context_for(request.schema, request.costing)
        with use_registry(self._tuner.metrics), context.lock:
            request, renames = self._admitted(request, context)
            advisor = make_advisor(spec.name, request.schema,
                                   shared_optimizer=context.optimizer,
                                   shared_inum=context.inum,
                                   **request.resolved_options())
            workload = context.canonical_workload(request.workload)
            candidates = _resolve_candidates(request, context, workload)
            inner = InteractiveTuningSession(
                advisor, workload, constraints=request.constraints,
                candidates=candidates, dba_indexes=())
        return TuningSession(self, context, request, inner, renames=renames)

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="tuning-service")
        return self._executor


class TuningSession:
    """A service-held interactive session returning :class:`TuningResult`.

    Thin concurrency-and-normalisation shell over
    :class:`InteractiveTuningSession`: every call holds the schema context's
    lock (sessions share the context cache with regular ``tune()`` traffic)
    and converts the recommendation uniformly.  The underlying session stays
    reachable as :attr:`inner` for BIP-level inspection.
    """

    def __init__(self, service: TuningService, context: SchemaContext,
                 request: TuningRequest, inner: InteractiveTuningSession,
                 renames: dict[str, str] | None = None):
        self._service = service
        self._context = context
        self._request = request
        self._inner = inner
        #: Statement renames applied at admission (auto-namespacing); later
        #: constraint updates referencing original names must follow them.
        self._renames = dict(renames or {})
        self._history: list[TuningResult] = []
        #: Serializes whole session steps: the context lock only covers the
        #: solve, but step numbering and history order must match execution
        #: order even when concurrent server threads drive one session.
        self._step_lock = threading.Lock()

    # ---------------------------------------------------------------- accessors
    @property
    def inner(self) -> InteractiveTuningSession:
        return self._inner

    @property
    def history(self) -> tuple[TuningResult, ...]:
        return tuple(self._history)

    @property
    def last_result(self) -> TuningResult | None:
        return self._history[-1] if self._history else None

    # ------------------------------------------------------------------ tuning
    def recommend(self) -> TuningResult:
        """Initial recommendation (full INUM + build + solve)."""
        return self._run("recommend")

    def add_candidates(self, new_indexes) -> TuningResult:
        """Re-tune after adding candidates (delta BIP + warm start)."""
        return self._run("add_candidates", new_indexes)

    def remove_candidates(self, removed_indexes) -> TuningResult:
        """Re-tune after retracting candidates (pinned delta BIP)."""
        return self._run("remove_candidates", removed_indexes)

    def update_constraints(self, constraints) -> TuningResult:
        """Re-tune under a different constraint set (warm-started).

        Constraints referencing statements by their *original* names are
        rewritten through the admission-time rename map, so clients of a
        namespacing service keep using the names they sent.
        """
        if self._renames:
            constraints = [
                _renamed_constraint(constraint, self._renames,
                                    self._inner.workload)
                for constraint in constraints]
        return self._run("update_constraints", constraints)

    # ---------------------------------------------------------------- internals
    def _run(self, method: str, *args: Any) -> TuningResult:
        with self._step_lock:
            with use_registry(self._service.tuner.metrics), \
                    self._context.lock:
                recommendation = getattr(self._inner, method)(*args)
            provenance = {
                "api_version": 1,
                "request_id": self._request.request_id,
                "advisor": {"name": "cophy",
                            "class": "InteractiveTuningSession"},
                "session": {"step": len(self._history) + 1,
                            "operation": method},
                "schema": {"name": self._request.schema.name,
                           "tables": len(self._request.schema)},
                "workload": {"name": self._inner.workload.name},
            }
            result = build_session_result(recommendation, provenance)
            self._history.append(result)
            return result
