"""The unified tuning API: declarative requests, one facade, uniform results.

The paper's advisor is *scalable, portable and interactive*; this package is
the one stable surface those properties are served through:

* :class:`~repro.api.specs.TuningRequest` — a declarative tuning problem
  (workload + schema + constraints + :class:`AdvisorSpec` /
  :class:`CostingSpec` / :class:`ScaleSpec`), no hand-threaded wiring;
* :class:`~repro.api.tuner.Tuner` — ``tune(request) -> TuningResult`` with
  automatic per-schema sharing of the optimizer, the INUM cache and workload
  tensors;
* :class:`~repro.api.result.TuningResult` — configuration, per-statement
  costs, solver diagnostics and a machine-readable provenance, JSON
  round-trippable;
* the advisor **registry** (:mod:`repro.api.registry`) — every strategy
  (CoPhy, ILP, Tool-A, Tool-B, scale-out) is a pluggable
  :class:`AdvisorProtocol` implementation registered by name;
* :class:`~repro.api.service.TuningService` — concurrent serving with
  per-schema cache sharing and interactive sessions
  (:meth:`~repro.api.service.TuningService.open_session`).

Quick start::

    from repro.api import Tuner, TuningRequest
    from repro import StorageBudgetConstraint
    from repro.catalog import tpch_schema
    from repro.workload import generate_homogeneous_workload

    schema = tpch_schema(scale_factor=0.01)
    request = TuningRequest(
        workload=generate_homogeneous_workload(40, seed=7),
        schema=schema,
        constraints=[StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)],
    )
    result = Tuner().tune(request)
    print(result.summary(), result.to_json(indent=2))
"""

from repro.api.registry import (
    AdvisorProtocol,
    advisor_factory,
    available_advisors,
    make_advisor,
    register_advisor,
)
from repro.api.result import StatementCost, TuningDiagnostics, TuningResult
from repro.api.service import TuningService, TuningSession
from repro.api.specs import AdvisorSpec, CostingSpec, ScaleSpec, TuningRequest
from repro.api.tuner import SchemaContext, Tuner

__all__ = [
    "AdvisorProtocol",
    "AdvisorSpec",
    "CostingSpec",
    "ScaleSpec",
    "SchemaContext",
    "StatementCost",
    "TuningDiagnostics",
    "TuningRequest",
    "TuningResult",
    "TuningService",
    "TuningSession",
    "Tuner",
    "advisor_factory",
    "available_advisors",
    "make_advisor",
    "register_advisor",
]
