"""``Tuner.tune(request) -> TuningResult`` — the single tuning entry point.

The Tuner owns one :class:`SchemaContext` per ``(schema, CostingSpec)``: a
shared what-if optimizer, a shared :class:`InumCache` (templates, gamma
matrices, workload tensors) and an LRU of canonical workload objects.  Every
request against the same schema reuses that state — candidate registration
rides on ``InumCache.prepare``'s idempotent/incremental columns, so a second
request with an enlarged candidate set appends columns instead of rebuilding
anything, and equal workloads resolve to one canonical object so the
id-keyed tensor cache keeps hitting.

The Tuner itself is single-threaded; :class:`repro.api.service.TuningService`
adds per-context locking and a thread pool on top for concurrent serving.
"""

from __future__ import annotations

import cProfile
import contextlib
import hashlib
import logging
import threading
import time
from collections import OrderedDict
from typing import Any, Hashable, Mapping

from repro.advisors.base import Advisor, Recommendation
from repro.api.registry import canonical_name, make_advisor
from repro.api.result import StatementCost, TuningResult
from repro.api.specs import CostingSpec, TuningRequest
from repro.catalog.schema import Schema
from repro.exceptions import WorkloadError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.inum.cache import InumCache
from repro.obs.log import log_event
from repro.obs.metrics import (
    MetricsRegistry,
    declare_standard_metrics,
    use_registry,
)
from repro.obs.profile import (
    InstrumentedLock,
    ProfileSampler,
    drain_pending_waits,
    ensure_memory_tracking,
)
from repro.obs.store import TraceStore
from repro.obs.trace import Tracer, activate, span
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import UpdateQuery
from repro.workload.workload import Workload, WorkloadStatement

__all__ = ["SchemaContext", "Tuner"]

#: Cap on canonical workload objects kept per schema context (aligned with
#: the tensor LRU inside ``InumCache`` — keeping more would be pointless).
WORKLOAD_LRU_LIMIT = 8


def statement_digest(query) -> Hashable:
    """The exact structural identity of one statement.

    The scale-out structural signature (tables, joins, predicate
    columns/operators/selectivity hints, grouping/ordering/aggregation/
    projection shape, update targets) plus the predicate *constants*, which
    the signature deliberately buckets — two statements with equal digests
    are costed identically by the optimizer.
    """
    from repro.scale.compress import structural_statement_key

    shell = query.query_shell() if isinstance(query, UpdateQuery) else query
    constants = tuple(sorted(
        (p.column.table, p.column.column, p.operator.name, repr(p.value))
        for p in shell.predicates))
    return (query.kind.value, structural_statement_key(query), constants)


def admission_names(query) -> tuple[str, ...]:
    """The statement names one query occupies in the shared INUM cache.

    Updates occupy two: their own name and their query shell's (the shell is
    what INUM enumerates templates for).
    """
    shell = query.query_shell() if isinstance(query, UpdateQuery) else query
    return tuple(dict.fromkeys((query.name, shell.name)))


def workload_fingerprint(workload: Workload) -> Hashable:
    """A hashable identity for "the same workload arriving again".

    Keyed on names, weights *and* every statement's structural digest.  Two
    workloads with equal fingerprints contain statements the optimizer costs
    identically, so substituting one for the other cannot change any
    recommendation — default statement names from ``parse_workload``
    (``stmt1``, ``stmt2``, …) never alias structurally different workloads
    onto each other.
    """
    return (workload.name,
            tuple((statement.query.name, statement.weight,
                   statement_digest(statement.query))
                  for statement in workload))


class SchemaContext:
    """Shared per-(schema, costing) state behind the unified API."""

    def __init__(self, schema: Schema, costing: CostingSpec):
        self.schema = schema
        self.costing = costing
        self.optimizer = WhatIfOptimizer(schema)
        self.inum = InumCache(
            self.optimizer,
            max_orders_per_table=costing.max_orders_per_table,
            max_templates_per_query=costing.max_templates_per_query,
            use_gamma_matrix=costing.use_gamma_matrix,
            build_workers=costing.build_workers,
            build_processes=costing.build_processes,
        )
        self.candidate_generator = CandidateGenerator(schema)
        #: Serializes cache-mutating pipelines; taken by the TuningService
        #: around every tune/session call on this context.  Instrumented:
        #: every acquisition records its wait into
        #: ``repro_lock_wait_seconds{lock="schema_context"}``.
        self.lock = InstrumentedLock("schema_context")
        self._workloads: OrderedDict[Hashable, Workload] = OrderedDict()
        #: Structural digest per statement name ever admitted: the shared
        #: ``InumCache`` keys templates/matrices by statement name, so one
        #: name must mean one statement shape for the context's lifetime.
        self._statement_digests: dict[str, Hashable] = {}

    # Lock-free counter snapshots: ``len()`` is atomic under the GIL, and a
    # stats poll must never block behind a context whose lock is held for
    # the duration of a long solve.
    @property
    def canonical_workload_count(self) -> int:
        return len(self._workloads)

    @property
    def statement_name_count(self) -> int:
        return len(self._statement_digests)

    def canonical_workload(self, workload: Workload) -> Workload:
        """The first-seen workload object equal to ``workload`` (LRU-kept).

        ``InumCache`` keys workload tensors by object identity; routing equal
        requests through one canonical object turns repeated service traffic
        into tensor cache hits instead of rebuilds.

        Raises:
            WorkloadError: When a statement reuses a name this context has
                already cached for a *structurally different* statement —
                serving it against the name-keyed shared cache would mix two
                statements' templates (wrong costs, or a shape crash deep in
                the tensor), so the collision is rejected loudly at admission.
        """
        from repro.obs.metrics import active_registry

        events = active_registry().counter(
            "repro_cache_events_total",
            "Hits and misses of the tuning-stack caches", ("cache", "event"))
        key = workload_fingerprint(workload)
        with self.lock:
            known = self._workloads.get(key)
            if known is not None:
                self._workloads.move_to_end(key)
                events.inc(cache="canonical_workload", event="hit")
                return known
            events.inc(cache="canonical_workload", event="miss")
            self._admit(workload)
            if len(self._workloads) >= WORKLOAD_LRU_LIMIT:
                self._workloads.popitem(last=False)
            self._workloads[key] = workload
            return workload

    def _collisions(self, workload: Workload
                    ) -> tuple[dict[str, Hashable], set[str]]:
        """Probe every statement name against the context's digest registry.

        Returns the registrations the workload would add, plus the set of
        names that already denote a *structurally different* statement (in
        this context, or earlier in the same workload).  Pure — nothing is
        committed.
        """
        admitted: dict[str, Hashable] = {}
        conflicts: set[str] = set()
        for statement in workload:
            query = statement.query
            digest = statement_digest(query)
            for name in admission_names(query):
                known = self._statement_digests.get(name, admitted.get(name))
                if known is None:
                    admitted[name] = digest
                elif known != digest:
                    conflicts.add(name)
        return admitted, conflicts

    def _admit(self, workload: Workload) -> None:
        """Check every statement name against the context's digest registry.

        Validate-then-commit: a rejected workload must leave no trace — a
        partial registration would spuriously reject later workloads with
        names that never reached the shared cache.
        """
        admitted, conflicts = self._collisions(workload)
        if conflicts:
            name = sorted(conflicts)[0]
            raise WorkloadError(
                f"Statement name {name!r} already denotes a "
                f"structurally different statement in this schema "
                f"context (the shared INUM cache keys templates by "
                f"name). Give statements unique names, or tune the "
                f"conflicting workload through its own Tuner or a "
                f"distinct CostingSpec.")
        self._statement_digests.update(admitted)

    def namespaced_workload(self, workload: Workload
                            ) -> tuple[Workload, dict[str, str]]:
        """A collision-free clone of ``workload`` for this context.

        Statements whose names already denote a structurally different
        statement are cloned under a request-qualified name
        (``<name>@<digest8>``, where ``digest8`` is content-addressed from
        the workload's structural fingerprint), so arbitrary client traffic
        can share one schema context instead of being rejected at admission.
        Content-addressing makes the rename deterministic: the same workload
        payload always maps to the same qualified names, regardless of how
        concurrent requests interleave, so repeats keep hitting the canonical
        workload LRU and the tensor cache.

        Returns the workload plus the ``old name -> new name`` rename map
        (``workload`` itself and an empty map when nothing collides), so the
        caller can rewrite anything else in the request that references
        statements by name.  Collisions *within* one workload (two
        same-named, structurally different statements in a single request)
        cannot be namespaced apart — both sides would receive the same
        qualifier — and still fail admission loudly.
        """
        with self.lock:
            key = workload_fingerprint(workload)
            if key in self._workloads:
                return workload, {}  # already admitted verbatim
            _, conflicts = self._collisions(workload)
        if not conflicts:
            return workload, {}
        suffix = hashlib.sha256(
            repr(key).encode("utf-8")).hexdigest()[:8]
        statements = []
        renames: dict[str, str] = {}
        for statement in workload:
            query = statement.query
            if conflicts.intersection(admission_names(query)):
                renames[query.name] = f"{query.name}@{suffix}"
                query = query.with_name(renames[query.name])
            statements.append(WorkloadStatement(query, statement.weight))
        return Workload(statements, name=workload.name), renames


class Tuner:
    """The declarative tuning facade: resolve, wire, run, normalise.

    Args:
        max_contexts: Optional LRU cap on live :class:`SchemaContext`s.  A
            long-lived server decodes client schemas into fresh objects, so
            without a cap the per-schema caches (templates, gamma matrices,
            tensors) grow for the process lifetime; exceeding the cap evicts
            the least-recently-used context wholesale.  A request already
            holding an evicted context finishes safely on its own reference —
            eviction only means the *next* request for that schema starts
            cold.
        context_ttl_s: Optional idle TTL in seconds; contexts unused for
            longer are reaped on the next ``context_for`` call.
        fault_plan: Explicit fault-injection plan
            (:class:`~repro.reliability.faults.FaultPlan`) consulted by the
            pipeline's ``solver`` fault site; ``None`` defers to the
            process-wide armed plan / ``REPRO_FAULT_PLAN`` env var.
        tracing: Record a span tree per request and export it in
            ``TuningResult.extras["trace"]`` (on by default; spans are
            timing-only, so fingerprints are identical either way —
            asserted in the tests).
        metrics: The :class:`~repro.obs.metrics.MetricsRegistry` this
            tuner's pipelines record into (activated ambiently around each
            request); a fresh registry with the standard families declared
            is created when omitted.
        trace_store: An explicit :class:`~repro.obs.store.TraceStore` to
            record completed traces into; when omitted, one is built from
            ``trace_store_size`` / ``slow_threshold_ms``.
        trace_store_size: Capacity of the built-in trace store; 0 disables
            trace retention entirely (requests still export their trace in
            the result).
        slow_threshold_ms: Requests at least this slow are pinned in the
            store's slow ring so outliers survive rotation.
        profile_every: Capture a sampled ``cProfile`` hotspot table on every
            Nth request (``extras["profile"]``; volatile,
            fingerprint-excluded).  ``None`` (default) disables profiling.
        profile_memory: Record per-span ``tracemalloc`` peak-allocation
            deltas (starts tracemalloc process-wide; measurable overhead, so
            opt-in).
    """

    def __init__(self, max_contexts: int | None = None,
                 context_ttl_s: float | None = None,
                 fault_plan=None, tracing: bool = True,
                 metrics: MetricsRegistry | None = None,
                 trace_store: TraceStore | None = None,
                 trace_store_size: int = 128,
                 slow_threshold_ms: float | None = None,
                 profile_every: int | None = None,
                 profile_memory: bool = False) -> None:
        if max_contexts is not None and max_contexts < 1:
            raise ValueError("max_contexts must be positive (or None)")
        if context_ttl_s is not None and context_ttl_s <= 0:
            raise ValueError("context_ttl_s must be positive (or None)")
        if trace_store_size < 0:
            raise ValueError("trace_store_size must be >= 0")
        self.max_contexts = max_contexts
        self.context_ttl_s = context_ttl_s
        self.fault_plan = fault_plan
        self.tracing = bool(tracing)
        self.metrics = (metrics if metrics is not None
                        else declare_standard_metrics(MetricsRegistry()))
        if trace_store is not None:
            self.trace_store: TraceStore | None = trace_store
        elif trace_store_size > 0:
            self.trace_store = TraceStore(
                capacity=trace_store_size, slow_threshold_ms=slow_threshold_ms)
        else:
            self.trace_store = None
        self.profiler = (ProfileSampler(profile_every)
                         if profile_every is not None else None)
        self.profile_memory = bool(profile_memory)
        if self.profile_memory:
            ensure_memory_tracking()
        self._contexts: OrderedDict[tuple[int, CostingSpec], SchemaContext] = \
            OrderedDict()
        self._last_used: dict[tuple[int, CostingSpec], float] = {}
        self._contexts_lock = threading.Lock()
        #: Contexts dropped by the LRU cap / by TTL expiry (monotonic counters).
        self.evicted_contexts = 0
        self.expired_contexts = 0

    # ---------------------------------------------------------------- contexts
    def context_for(self, schema: Schema,
                    costing: CostingSpec | None = None) -> SchemaContext:
        """The shared context of a schema (created on first use)."""
        costing = costing or CostingSpec()
        key = (id(schema), costing)
        now = time.monotonic()
        with self._contexts_lock:
            self._purge_expired(now)
            context = self._contexts.get(key)
            if context is None or context.schema is not schema:
                context = SchemaContext(schema, costing)
                self._contexts[key] = context
            self._contexts.move_to_end(key)
            self._last_used[key] = now
            if self.max_contexts is not None:
                # The requested key was just moved to the end, so the LRU
                # victims popped off the front are always other contexts.
                while len(self._contexts) > self.max_contexts:
                    victim, _ = self._contexts.popitem(last=False)
                    self._last_used.pop(victim, None)
                    self.evicted_contexts += 1
            return context

    def _purge_expired(self, now: float) -> None:
        if self.context_ttl_s is None:
            return
        expired = [key for key, used in self._last_used.items()
                   if now - used > self.context_ttl_s]
        for key in expired:
            self._contexts.pop(key, None)
            self._last_used.pop(key, None)
            self.expired_contexts += 1

    @property
    def contexts(self) -> tuple[SchemaContext, ...]:
        with self._contexts_lock:
            return tuple(self._contexts.values())

    def context_stats(self) -> dict[str, Any]:
        """Machine-readable context / eviction counters (``/v1/stats``).

        Also reaps TTL-expired contexts, so the reported state is accurate
        and a stats-polling monitor doubles as the reaper on an otherwise
        idle server (``context_for`` is the other reap point).
        """
        with self._contexts_lock:
            self._purge_expired(time.monotonic())
            snapshot = list(self._contexts.values())
        # Per-context counters are read outside the registry lock (and are
        # themselves lock-free) so a poll never stalls tuning traffic.
        contexts = [
            {"schema": context.schema.name,
             "cached_queries": context.inum.cached_query_count,
             "template_builds": context.inum.template_build_calls,
             "canonical_workloads": context.canonical_workload_count,
             "statement_names": context.statement_name_count}
            for context in snapshot
        ]
        return {
            "contexts": contexts,
            "context_count": len(contexts),
            "max_contexts": self.max_contexts,
            "context_ttl_s": self.context_ttl_s,
            "evicted_contexts": self.evicted_contexts,
            "expired_contexts": self.expired_contexts,
        }

    def effective_fault_plan(self):
        """The fault plan governing this tuner's pipelines (may be None)."""
        from repro.reliability.faults import armed_plan

        return self.fault_plan if self.fault_plan is not None \
            else armed_plan()

    # ------------------------------------------------------------------ tuning
    def tune(self, request: TuningRequest) -> TuningResult:
        """Run one declarative tuning request end to end.

        Holds the context lock for the duration of the pipeline: the INUM
        cache does not serialize itself, and an embedded ``Tuner`` shared
        across threads would otherwise interleave cache mutation.  The lock
        is an RLock and uncontended in the single-threaded case, so the
        embedded fast path pays nothing for it.
        """
        context = self.context_for(request.schema, request.costing)
        with use_registry(self.metrics), context.lock:
            return tune_in_context(request, context,
                                   fault_plan=self.effective_fault_plan(),
                                   tracing=self.tracing, metrics=self.metrics,
                                   trace_store=self.trace_store,
                                   profiler=self.profiler,
                                   profile_memory=self.profile_memory)


# ----------------------------------------------------------------- pipeline
def tune_in_context(request: TuningRequest, context: SchemaContext, *,
                    namespaced: bool = False,
                    fault_plan=None, tracing: bool = True,
                    metrics: MetricsRegistry | None = None,
                    trace_store: TraceStore | None = None,
                    profiler: ProfileSampler | None = None,
                    profile_memory: bool = False) -> TuningResult:
    """The resolved pipeline: advisor from registry, shared wiring, result.

    Factored out of :class:`Tuner` so the service can run it under its own
    per-context locking without re-resolving contexts.  ``namespaced`` is
    recorded in the provenance when the service auto-namespaced the
    workload's statement names at admission.  ``fault_plan`` arms the
    ``solver`` fault site: the check fires before the advisor runs, so a
    caller-level retry repeats a request the pipeline never started; the
    plan is then armed process-wide for the duration of the solve, which is
    how it reaches the downstream fault sites (shard executors, matrix
    builds) without every advisor growing a ``fault_plan`` parameter.

    Observability rides the same ambient pattern: ``tracing`` opens the
    root ``tune`` span on a fresh :class:`~repro.obs.trace.Tracer`
    (inheriting a pending trace id planted by the HTTP server or
    :func:`~repro.obs.trace.trace_context`) and activates it for the
    duration, so advisor/solver/executor spans nest under it without
    parameters; ``metrics`` is activated the same way.  Request latency and
    status are recorded even when the pipeline raises, the facade's
    ``total`` timing is finalized in a ``finally``, and a failed request's
    partial trace is exported to the structured log.

    Performance introspection (PR 10): the lock/queue waits the serving
    thread accumulated before the pipeline started are drained onto the
    root span (``lock_wait_ms`` / ``queue_wait_ms``); ``profiler`` decides
    per-request whether to run the pipeline under ``cProfile`` and attach
    the hotspot table; ``trace_store`` retains the finished (or
    failed-partial) trace for ``GET /v1/traces``; and the latency histogram
    sample carries the trace id as an exemplar so a slow bucket can be
    chased back to its stored trace.  All of it is observation only — the
    result fingerprint is bit-identical with every knob on or off.
    """
    from repro.obs.metrics import active_registry
    from repro.reliability.faults import armed, maybe_check

    started = time.perf_counter()
    facade_timings: dict[str, float] = {}
    spec = request.resolved_advisor()
    options = request.resolved_options()
    advisor_name = canonical_name(spec.name)
    tracer = Tracer(track_memory=profile_memory) if tracing else None
    registry = metrics if metrics is not None else active_registry()
    status, tier = "error", "none"
    profile_capture: cProfile.Profile | None = None
    profile_payload: dict[str, Any] | None = None
    trace_payload: dict[str, Any] | None = None
    try:
        with contextlib.ExitStack() as scope:
            scope.enter_context(use_registry(registry))
            root = None
            if tracer is not None:
                scope.enter_context(activate(tracer))
                root = scope.enter_context(tracer.span(
                    "tune", advisor=advisor_name,
                    request_id=request.request_id,
                    schema=request.schema.name,
                    statements=len(request.workload)))

            # Attribute the waits that preceded the pipeline (context-lock
            # acquisition, pool queueing) to this request's root span; the
            # drain also clears the thread-local so pool-thread reuse never
            # leaks one request's waits into the next.
            waits = drain_pending_waits()
            if root is not None:
                if "lock_wait_s" in waits:
                    root.set(lock_wait_ms=round(
                        waits["lock_wait_s"] * 1000.0, 3))
                if "queue_wait_s" in waits:
                    root.set(queue_wait_ms=round(
                        waits["queue_wait_s"] * 1000.0, 3))

            if profiler is not None and profiler.should_capture():
                profile_capture = cProfile.Profile()
                profile_capture.enable()

            # Anchor the anytime deadline here so facade work (candidate
            # resolution, cache preparation) spends the same budget the
            # advisor sees.
            budget = spec.solve_budget()
            if budget is not None:
                budget.start()
            maybe_check(fault_plan, "solver", key=advisor_name)

            workload = context.canonical_workload(request.workload)
            candidates = _resolve_candidates(request, context, workload)

            advisor = make_advisor(spec.name, request.schema,
                                   shared_optimizer=context.optimizer,
                                   shared_inum=context.inum, **options)

            # Request-scoped candidate registration: when the request names
            # its candidate universe, the shared cache registers the columns
            # before the advisor runs (idempotent + incremental — repeated
            # requests only append genuinely new columns).
            prepared = False
            shares_cache = getattr(advisor, "inum", None) is context.inum
            if candidates is not None and shares_cache:
                prepare_started = time.perf_counter()
                with span("prepare", candidates=len(candidates)):
                    context.inum.prepare(workload, candidates)
                facade_timings["prepare"] = \
                    time.perf_counter() - prepare_started
                prepared = True

            plan_guard = (armed(fault_plan) if fault_plan is not None
                          else contextlib.nullcontext())
            with plan_guard:
                if budget is None:
                    # Budget-less requests take the exact legacy call —
                    # custom advisors registered with a pre-anytime tune()
                    # signature keep working.
                    recommendation = advisor.tune(workload,
                                                  request.constraints,
                                                  candidates=candidates)
                else:
                    recommendation = advisor.tune(workload,
                                                  request.constraints,
                                                  candidates=candidates,
                                                  budget=budget)
            tier = recommendation.solve_tier

            evaluate = request.per_statement_costs
            if evaluate is None:
                # Default: evaluate only advisors already wired to the
                # context's gamma-matrix cache — the tensors exist, one
                # reduction is free.  The black-box baselines
                # (dta/relaxation without use_shared_inum) would pay a full
                # INUM build they deliberately avoided, and scale-out exists
                # to never cost the full workload monolithically.
                evaluate = (shares_cache and context.inum.uses_gamma_matrix
                            and advisor_name != "scaleout")
            # An explicit True always evaluates: InumCache.statement_costs
            # answers from the per-statement loop when gamma matrices are
            # disabled.
            statement_costs: tuple[StatementCost, ...] = ()
            if evaluate:
                evaluate_started = time.perf_counter()
                with span("evaluate", statements=len(workload)):
                    costs = context.inum.statement_costs(
                        workload, recommendation.configuration)
                statement_costs = tuple(
                    StatementCost(statement=statement.query.name,
                                  weight=statement.weight, cost=float(cost))
                    for statement, cost in zip(workload, costs))
                facade_timings["evaluate"] = \
                    time.perf_counter() - evaluate_started

            if root is not None:
                root.set(tier=tier,
                         whatif_calls=recommendation.whatif_calls,
                         indexes=len(recommendation.configuration),
                         retries=recommendation.retries,
                         faults_survived=recommendation.faults_survived,
                         degraded=recommendation.degraded)
            status = "degraded" if recommendation.degraded else "ok"
    finally:
        # The total facade timing must exist even when the pipeline raises
        # mid-stage, so failed requests still report latency and export a
        # (partial) trace instead of vanishing without a timing record.
        if profile_capture is not None:
            profile_capture.disable()
            profile_payload = profiler.hotspots(profile_capture)
        drain_pending_waits()  # discard in-pipeline residue
        facade_timings["total"] = time.perf_counter() - started
        registry.counter(
            "repro_requests_total",
            "Tuning requests served through the facade",
            ("advisor", "tier", "status")).inc(
            advisor=advisor_name, tier=tier, status=status)
        registry.histogram(
            "repro_request_seconds",
            "End-to-end facade latency per tuning request",
            ("advisor",)).observe(
            facade_timings["total"], advisor=advisor_name,
            exemplar=tracer.trace_id if tracer is not None else None)
        trace_payload = tracer.export() if tracer is not None else None
        if trace_store is not None and trace_payload is not None:
            trace_store.record(
                trace_payload, advisor=advisor_name, status=status,
                duration_ms=facade_timings["total"] * 1000.0,
                request_id=request.request_id, profile=profile_payload)
        if status == "error" and tracer is not None:
            log_event(logging.WARNING, "tune_failed",
                      advisor=advisor_name, request_id=request.request_id,
                      seconds=round(facade_timings["total"], 4),
                      trace_id=tracer.trace_id, trace=trace_payload)

    provenance = _provenance(request, spec, options, advisor, workload,
                             candidates, prepared=prepared, evaluated=evaluate,
                             namespaced=namespaced)
    return TuningResult.from_recommendation(
        recommendation, provenance=provenance,
        statement_costs=statement_costs, facade_timings=facade_timings,
        trace=trace_payload, profile=profile_payload)


def build_session_result(recommendation: Recommendation,
                         provenance: Mapping[str, Any]) -> TuningResult:
    """Normalise an interactive-session recommendation (no re-evaluation)."""
    return TuningResult.from_recommendation(recommendation,
                                            provenance=provenance)


def _resolve_candidates(request: TuningRequest, context: SchemaContext,
                        workload: Workload) -> CandidateSet | None:
    """The request's candidate universe as a :class:`CandidateSet`.

    ``None`` (no explicit candidates, no DBA indexes) defers to the advisor's
    own candidate generation, exactly like the legacy call path.
    """
    candidates = request.candidates
    if candidates is None:
        if not request.dba_indexes:
            return None
        return context.candidate_generator.generate(
            workload, dba_indexes=request.dba_indexes)
    if isinstance(candidates, CandidateSet):
        if not request.dba_indexes:
            return candidates
        return CandidateSet(request.schema,
                            (*candidates, *request.dba_indexes))
    return CandidateSet(request.schema,
                        (*tuple(candidates), *request.dba_indexes))


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of advisor options for the provenance."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _provenance(request: TuningRequest, spec, options: Mapping[str, Any],
                advisor: Advisor, workload: Workload,
                candidates: CandidateSet | None, *, prepared: bool,
                evaluated: bool, namespaced: bool = False) -> dict[str, Any]:
    """The machine-readable record of the resolved pipeline."""
    return {
        "api_version": 1,
        "request_id": request.request_id,
        "advisor": {
            "requested": spec.name,
            "name": canonical_name(spec.name),
            "class": type(advisor).__name__,
            "options": _jsonable(dict(options)),
            "time_budget_ms": spec.time_budget_ms,
            "solve_tier": spec.solve_tier,
        },
        "costing": request.costing.to_provenance(),
        "scale": (request.scale.to_provenance()
                  if request.scale is not None else None),
        "schema": {"name": request.schema.name, "tables": len(request.schema)},
        "workload": {"name": workload.name, **workload.summary()},
        "constraints": [getattr(constraint, "name", type(constraint).__name__)
                        for constraint in request.constraints],
        "candidates": {
            "provided": request.candidates is not None,
            "dba_indexes": len(request.dba_indexes),
            "count": None if candidates is None else len(candidates),
        },
        "pipeline": {"prepared": prepared, "evaluated": evaluated,
                     "namespaced": namespaced},
    }
