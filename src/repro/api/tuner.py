"""``Tuner.tune(request) -> TuningResult`` — the single tuning entry point.

The Tuner owns one :class:`SchemaContext` per ``(schema, CostingSpec)``: a
shared what-if optimizer, a shared :class:`InumCache` (templates, gamma
matrices, workload tensors) and an LRU of canonical workload objects.  Every
request against the same schema reuses that state — candidate registration
rides on ``InumCache.prepare``'s idempotent/incremental columns, so a second
request with an enlarged candidate set appends columns instead of rebuilding
anything, and equal workloads resolve to one canonical object so the
id-keyed tensor cache keeps hitting.

The Tuner itself is single-threaded; :class:`repro.api.service.TuningService`
adds per-context locking and a thread pool on top for concurrent serving.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Hashable, Mapping

from repro.advisors.base import Advisor, Recommendation
from repro.api.registry import canonical_name, make_advisor
from repro.api.result import StatementCost, TuningResult
from repro.api.specs import CostingSpec, TuningRequest
from repro.catalog.schema import Schema
from repro.exceptions import WorkloadError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import UpdateQuery
from repro.workload.workload import Workload

__all__ = ["SchemaContext", "Tuner"]

#: Cap on canonical workload objects kept per schema context (aligned with
#: the tensor LRU inside ``InumCache`` — keeping more would be pointless).
WORKLOAD_LRU_LIMIT = 8


def statement_digest(query) -> Hashable:
    """The exact structural identity of one statement.

    The scale-out structural signature (tables, joins, predicate
    columns/operators/selectivity hints, grouping/ordering/aggregation/
    projection shape, update targets) plus the predicate *constants*, which
    the signature deliberately buckets — two statements with equal digests
    are costed identically by the optimizer.
    """
    from repro.scale.compress import structural_statement_key

    shell = query.query_shell() if isinstance(query, UpdateQuery) else query
    constants = tuple(sorted(
        (p.column.table, p.column.column, p.operator.name, repr(p.value))
        for p in shell.predicates))
    return (query.kind.value, structural_statement_key(query), constants)


def workload_fingerprint(workload: Workload) -> Hashable:
    """A hashable identity for "the same workload arriving again".

    Keyed on names, weights *and* every statement's structural digest.  Two
    workloads with equal fingerprints contain statements the optimizer costs
    identically, so substituting one for the other cannot change any
    recommendation — default statement names from ``parse_workload``
    (``stmt1``, ``stmt2``, …) never alias structurally different workloads
    onto each other.
    """
    return (workload.name,
            tuple((statement.query.name, statement.weight,
                   statement_digest(statement.query))
                  for statement in workload))


class SchemaContext:
    """Shared per-(schema, costing) state behind the unified API."""

    def __init__(self, schema: Schema, costing: CostingSpec):
        self.schema = schema
        self.costing = costing
        self.optimizer = WhatIfOptimizer(schema)
        self.inum = InumCache(
            self.optimizer,
            max_orders_per_table=costing.max_orders_per_table,
            max_templates_per_query=costing.max_templates_per_query,
            use_gamma_matrix=costing.use_gamma_matrix,
            build_workers=costing.build_workers,
            build_processes=costing.build_processes,
        )
        self.candidate_generator = CandidateGenerator(schema)
        #: Serializes cache-mutating pipelines; taken by the TuningService
        #: around every tune/session call on this context.
        self.lock = threading.RLock()
        self._workloads: OrderedDict[Hashable, Workload] = OrderedDict()
        #: Structural digest per statement name ever admitted: the shared
        #: ``InumCache`` keys templates/matrices by statement name, so one
        #: name must mean one statement shape for the context's lifetime.
        self._statement_digests: dict[str, Hashable] = {}

    def canonical_workload(self, workload: Workload) -> Workload:
        """The first-seen workload object equal to ``workload`` (LRU-kept).

        ``InumCache`` keys workload tensors by object identity; routing equal
        requests through one canonical object turns repeated service traffic
        into tensor cache hits instead of rebuilds.

        Raises:
            WorkloadError: When a statement reuses a name this context has
                already cached for a *structurally different* statement —
                serving it against the name-keyed shared cache would mix two
                statements' templates (wrong costs, or a shape crash deep in
                the tensor), so the collision is rejected loudly at admission.
        """
        key = workload_fingerprint(workload)
        with self.lock:
            known = self._workloads.get(key)
            if known is not None:
                self._workloads.move_to_end(key)
                return known
            self._admit(workload)
            if len(self._workloads) >= WORKLOAD_LRU_LIMIT:
                self._workloads.popitem(last=False)
            self._workloads[key] = workload
            return workload

    def _admit(self, workload: Workload) -> None:
        """Check every statement name against the context's digest registry.

        Validate-then-commit: a rejected workload must leave no trace — a
        partial registration would spuriously reject later workloads with
        names that never reached the shared cache.
        """
        admitted: dict[str, Hashable] = {}
        for statement in workload:
            query = statement.query
            digest = statement_digest(query)
            shell = (query.query_shell() if isinstance(query, UpdateQuery)
                     else query)
            for name in dict.fromkeys((query.name, shell.name)):
                known = self._statement_digests.get(name, admitted.get(name))
                if known is None:
                    admitted[name] = digest
                elif known != digest:
                    raise WorkloadError(
                        f"Statement name {name!r} already denotes a "
                        f"structurally different statement in this schema "
                        f"context (the shared INUM cache keys templates by "
                        f"name). Give statements unique names, or tune the "
                        f"conflicting workload through its own Tuner or a "
                        f"distinct CostingSpec.")
        self._statement_digests.update(admitted)


class Tuner:
    """The declarative tuning facade: resolve, wire, run, normalise."""

    def __init__(self) -> None:
        self._contexts: dict[tuple[int, CostingSpec], SchemaContext] = {}
        self._contexts_lock = threading.Lock()

    # ---------------------------------------------------------------- contexts
    def context_for(self, schema: Schema,
                    costing: CostingSpec | None = None) -> SchemaContext:
        """The shared context of a schema (created on first use)."""
        costing = costing or CostingSpec()
        key = (id(schema), costing)
        with self._contexts_lock:
            context = self._contexts.get(key)
            if context is None or context.schema is not schema:
                context = SchemaContext(schema, costing)
                self._contexts[key] = context
            return context

    @property
    def contexts(self) -> tuple[SchemaContext, ...]:
        with self._contexts_lock:
            return tuple(self._contexts.values())

    # ------------------------------------------------------------------ tuning
    def tune(self, request: TuningRequest) -> TuningResult:
        """Run one declarative tuning request end to end."""
        context = self.context_for(request.schema, request.costing)
        return tune_in_context(request, context)


# ----------------------------------------------------------------- pipeline
def tune_in_context(request: TuningRequest, context: SchemaContext
                    ) -> TuningResult:
    """The resolved pipeline: advisor from registry, shared wiring, result.

    Factored out of :class:`Tuner` so the service can run it under its own
    per-context locking without re-resolving contexts.
    """
    started = time.perf_counter()
    facade_timings: dict[str, float] = {}
    spec = request.resolved_advisor()
    options = request.resolved_options()

    workload = context.canonical_workload(request.workload)
    candidates = _resolve_candidates(request, context, workload)

    advisor = make_advisor(spec.name, request.schema,
                           shared_optimizer=context.optimizer,
                           shared_inum=context.inum, **options)

    # Request-scoped candidate registration: when the request names its
    # candidate universe, the shared cache registers the columns before the
    # advisor runs (idempotent + incremental — repeated requests only append
    # genuinely new columns).
    prepared = False
    shares_cache = getattr(advisor, "inum", None) is context.inum
    if candidates is not None and shares_cache:
        prepare_started = time.perf_counter()
        context.inum.prepare(workload, candidates)
        facade_timings["prepare"] = time.perf_counter() - prepare_started
        prepared = True

    recommendation = advisor.tune(workload, request.constraints,
                                  candidates=candidates)

    evaluate = request.per_statement_costs
    if evaluate is None:
        # Default: evaluate only advisors already wired to the context's
        # gamma-matrix cache — the tensors exist, one reduction is free.
        # The black-box baselines (dta/relaxation without use_shared_inum)
        # would pay a full INUM build they deliberately avoided, and
        # scale-out exists to never cost the full workload monolithically.
        evaluate = (shares_cache and context.inum.uses_gamma_matrix
                    and canonical_name(spec.name) != "scaleout")
    # An explicit True always evaluates: InumCache.statement_costs answers
    # from the per-statement loop when gamma matrices are disabled.
    statement_costs: tuple[StatementCost, ...] = ()
    if evaluate:
        evaluate_started = time.perf_counter()
        costs = context.inum.statement_costs(workload,
                                             recommendation.configuration)
        statement_costs = tuple(
            StatementCost(statement=statement.query.name,
                          weight=statement.weight, cost=float(cost))
            for statement, cost in zip(workload, costs))
        facade_timings["evaluate"] = time.perf_counter() - evaluate_started

    facade_timings["total"] = time.perf_counter() - started
    provenance = _provenance(request, spec, options, advisor, workload,
                             candidates, prepared=prepared, evaluated=evaluate)
    return TuningResult.from_recommendation(
        recommendation, provenance=provenance,
        statement_costs=statement_costs, facade_timings=facade_timings)


def build_session_result(recommendation: Recommendation,
                         provenance: Mapping[str, Any]) -> TuningResult:
    """Normalise an interactive-session recommendation (no re-evaluation)."""
    return TuningResult.from_recommendation(recommendation,
                                            provenance=provenance)


def _resolve_candidates(request: TuningRequest, context: SchemaContext,
                        workload: Workload) -> CandidateSet | None:
    """The request's candidate universe as a :class:`CandidateSet`.

    ``None`` (no explicit candidates, no DBA indexes) defers to the advisor's
    own candidate generation, exactly like the legacy call path.
    """
    candidates = request.candidates
    if candidates is None:
        if not request.dba_indexes:
            return None
        return context.candidate_generator.generate(
            workload, dba_indexes=request.dba_indexes)
    if isinstance(candidates, CandidateSet):
        if not request.dba_indexes:
            return candidates
        return CandidateSet(request.schema,
                            (*candidates, *request.dba_indexes))
    return CandidateSet(request.schema,
                        (*tuple(candidates), *request.dba_indexes))


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of advisor options for the provenance."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _provenance(request: TuningRequest, spec, options: Mapping[str, Any],
                advisor: Advisor, workload: Workload,
                candidates: CandidateSet | None, *, prepared: bool,
                evaluated: bool) -> dict[str, Any]:
    """The machine-readable record of the resolved pipeline."""
    return {
        "api_version": 1,
        "request_id": request.request_id,
        "advisor": {
            "requested": spec.name,
            "name": canonical_name(spec.name),
            "class": type(advisor).__name__,
            "options": _jsonable(dict(options)),
        },
        "costing": request.costing.to_provenance(),
        "scale": (request.scale.to_provenance()
                  if request.scale is not None else None),
        "schema": {"name": request.schema.name, "tables": len(request.schema)},
        "workload": {"name": workload.name, **workload.summary()},
        "constraints": [getattr(constraint, "name", type(constraint).__name__)
                        for constraint in request.constraints],
        "candidates": {
            "provided": request.candidates is not None,
            "dba_indexes": len(request.dba_indexes),
            "count": None if candidates is None else len(candidates),
        },
        "pipeline": {"prepared": prepared, "evaluated": evaluated},
    }
