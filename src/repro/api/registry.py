"""The pluggable advisor registry.

Advisors are strategies implementing :class:`AdvisorProtocol` (structurally:
a ``name`` and ``tune(workload, constraints, candidates) -> Recommendation``).
Each strategy registers a *factory* under one or more names with
:func:`register_advisor`, entry-point style::

    @register_advisor("dta", aliases=("tool-b",))
    def _build_dta(schema, options, *, shared_optimizer=None, shared_inum=None):
        ...

A factory receives the catalog, the caller's constructor options, and — when
invoked by the :class:`~repro.api.tuner.Tuner` pipeline — the per-schema
shared optimizer and INUM cache.  The factory decides how the shared state is
wired: BIP-based advisors (CoPhy, ILP, scale-out) always adopt the shared
cache, while the paper-faithful black-box advisors (Tool-A, Tool-B) only do
so when the options opt in with ``use_shared_inum=True`` — their cost is
*defined* by their own optimizer calls, so silently switching them to INUM
would change the reproduced behaviour.

Explicit ``optimizer=`` / ``inum=`` options always win over shared wiring,
so imperative callers keep full control: ``make_advisor("dta", schema,
optimizer=opt, inum=InumCache(opt))`` behaves exactly like the legacy
constructor call, minus the :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Protocol, Sequence, runtime_checkable

from repro.advisors.base import Advisor, Recommendation, registry_construction
from repro.advisors.dta import DtaAdvisor
from repro.advisors.ilp_advisor import IlpAdvisor
from repro.advisors.relaxation import RelaxationAdvisor
from repro.advisors.scaleout import ScaleOutAdvisor
from repro.catalog.schema import Schema
from repro.core.advisor import CoPhyAdvisor
from repro.indexes.candidate_generation import CandidateSet
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload

__all__ = ["AdvisorProtocol", "AdvisorFactory", "register_advisor",
           "advisor_factory", "available_advisors", "make_advisor"]


@runtime_checkable
class AdvisorProtocol(Protocol):
    """What the Tuner requires of an advisor — the one strategy interface."""

    name: str

    def tune(self, workload: Workload, constraints: Sequence = (),
             candidates: CandidateSet | None = None) -> Recommendation:
        ...  # pragma: no cover - protocol definition


#: ``factory(schema, options, *, shared_optimizer=None, shared_inum=None)``.
AdvisorFactory = Callable[..., Advisor]

_FACTORIES: dict[str, AdvisorFactory] = {}
#: Canonical name per registered alias (provenance records the canonical one).
_CANONICAL: dict[str, str] = {}


def register_advisor(name: str, *, aliases: Sequence[str] = ()
                     ) -> Callable[[AdvisorFactory], AdvisorFactory]:
    """Register an advisor factory under ``name`` (plus optional aliases).

    Re-registering a name replaces the factory — sessions may override a
    built-in strategy with an instrumented one.
    """

    def decorator(factory: AdvisorFactory) -> AdvisorFactory:
        keys = dict.fromkeys((name, *aliases))
        # Re-registering a canonical name also rebinds every alias that
        # pointed at it, so alias traffic never serves a stale strategy.
        keys.update((key, None) for key, canonical in _CANONICAL.items()
                    if canonical == name)
        for key in keys:
            _FACTORIES[key] = factory
            _CANONICAL[key] = name
        return factory

    return decorator


def advisor_factory(name: str) -> AdvisorFactory:
    """The factory registered under ``name``; raises ``KeyError`` with help."""
    try:
        return _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"No advisor registered under {name!r}; available: "
            f"{', '.join(available_advisors())}") from None


def canonical_name(name: str) -> str:
    """Resolve an alias (e.g. ``"tool-b"``) to its canonical registry name."""
    if name not in _CANONICAL:
        advisor_factory(name)  # raises the helpful KeyError
    return _CANONICAL[name]


def available_advisors() -> tuple[str, ...]:
    """Every registered name and alias, sorted."""
    return tuple(sorted(_FACTORIES))


def make_advisor(name: str, schema: Schema, *,
                 shared_optimizer: WhatIfOptimizer | None = None,
                 shared_inum: InumCache | None = None,
                 **options: Any) -> Advisor:
    """Construct an advisor through the registry (the supported path).

    ``options`` are forwarded to the underlying constructor, so everything the
    legacy constructors accepted — including live ``optimizer=`` / ``inum=`` /
    ``candidate_generator=`` objects — keeps working here.  ``shared_*`` are
    the Tuner's ambient per-schema state; imperative callers rarely pass them.
    """
    factory = advisor_factory(name)
    with registry_construction():
        return factory(schema, options, shared_optimizer=shared_optimizer,
                       shared_inum=shared_inum)


# --------------------------------------------------------------------- wiring
def _wire(options: Mapping[str, Any],
          shared_optimizer: WhatIfOptimizer | None,
          shared_inum: InumCache | None,
          adopt_shared_inum: bool) -> dict[str, Any]:
    """Merge shared per-schema state into constructor options.

    Explicit options always win; the shared INUM cache is only adopted when
    the strategy's policy says so (``adopt_shared_inum``).
    """
    wired = dict(options)
    if shared_optimizer is not None:
        wired.setdefault("optimizer", shared_optimizer)
    if adopt_shared_inum and shared_inum is not None:
        wired.setdefault("inum", shared_inum)
    return wired


#: CoPhy options that configure an *owned* INUM cache; meaningless (and
#: silently ignored by the constructor) once a shared cache is adopted.
_INUM_CAP_OPTIONS = ("max_orders_per_table", "max_templates_per_query")


@register_advisor("cophy")
def _build_cophy(schema: Schema, options: Mapping[str, Any], *,
                 shared_optimizer: WhatIfOptimizer | None = None,
                 shared_inum: InumCache | None = None) -> Advisor:
    if shared_inum is not None and "inum" not in options:
        caps = [key for key in _INUM_CAP_OPTIONS if key in options]
        if caps:
            # Silently ignoring the caps would leave the provenance attesting
            # to enumeration limits that never applied.
            raise ValueError(
                f"AdvisorSpec options {caps} cannot apply to the shared INUM "
                f"cache; set the enumeration caps on CostingSpec instead "
                f"(they select the per-schema context)")
    return CoPhyAdvisor(schema, **_wire(options, shared_optimizer,
                                        shared_inum, adopt_shared_inum=True))


@register_advisor("ilp")
def _build_ilp(schema: Schema, options: Mapping[str, Any], *,
               shared_optimizer: WhatIfOptimizer | None = None,
               shared_inum: InumCache | None = None) -> Advisor:
    return IlpAdvisor(schema, **_wire(options, shared_optimizer,
                                      shared_inum, adopt_shared_inum=True))


@register_advisor("scaleout")
def _build_scaleout(schema: Schema, options: Mapping[str, Any], *,
                    shared_optimizer: WhatIfOptimizer | None = None,
                    shared_inum: InumCache | None = None) -> Advisor:
    return ScaleOutAdvisor(schema, **_wire(options, shared_optimizer,
                                           shared_inum,
                                           adopt_shared_inum=True))


@register_advisor("dta", aliases=("tool-b",))
def _build_dta(schema: Schema, options: Mapping[str, Any], *,
               shared_optimizer: WhatIfOptimizer | None = None,
               shared_inum: InumCache | None = None) -> Advisor:
    options = dict(options)
    adopt = bool(options.pop("use_shared_inum", False))
    return DtaAdvisor(schema, **_wire(options, shared_optimizer,
                                      shared_inum, adopt_shared_inum=adopt))


@register_advisor("relaxation", aliases=("tool-a",))
def _build_relaxation(schema: Schema, options: Mapping[str, Any], *,
                      shared_optimizer: WhatIfOptimizer | None = None,
                      shared_inum: InumCache | None = None) -> Advisor:
    options = dict(options)
    adopt = bool(options.pop("use_shared_inum", False))
    return RelaxationAdvisor(schema, **_wire(options, shared_optimizer,
                                             shared_inum,
                                             adopt_shared_inum=adopt))
