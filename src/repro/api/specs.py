"""The declarative request side of the unified tuning API.

A tuning problem is described by one :class:`TuningRequest`: the workload,
the catalog, the constraint set, and three small specs —
:class:`AdvisorSpec` (which strategy, with which knobs),
:class:`CostingSpec` (how the shared INUM cache is configured) and
:class:`ScaleSpec` (the scale-out pipeline knobs).  The specs are plain data:
they carry no live objects, so a request's resolved pipeline can be recorded
verbatim in the result's provenance and compared across sessions.

``Tuner.tune(request)`` / ``TuningService.tune(request)`` are the only
consumers; nothing here touches an optimizer or a cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.catalog.schema import Schema
from repro.core.constraints import SoftConstraint, TuningConstraint
from repro.exceptions import WorkloadError
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.index import Index
from repro.inum.cache import (
    DEFAULT_MAX_ORDERS_PER_TABLE,
    DEFAULT_MAX_TEMPLATES_PER_QUERY,
)
from repro.lp.budget import SOLVE_TIERS, SolveBudget
from repro.workload.workload import Workload

__all__ = ["AdvisorSpec", "CostingSpec", "ScaleSpec", "TuningRequest"]


@dataclass(frozen=True)
class AdvisorSpec:
    """Which advisor strategy to run, with its constructor knobs.

    Attributes:
        name: Registry name of the advisor (``"cophy"``, ``"ilp"``,
            ``"dta"``/``"tool-b"``, ``"relaxation"``/``"tool-a"``,
            ``"scaleout"`` — see :func:`repro.api.available_advisors`).
        options: Keyword options forwarded to the registered factory.  Must be
            JSON-representable values (they are recorded in the provenance);
            live objects (custom generators, solver backends) belong to the
            imperative :func:`repro.api.make_advisor` escape hatch instead.
        time_budget_ms: Anytime wall-clock budget for the whole tune, in
            milliseconds.  ``None`` (the default) keeps today's run-to-gap
            behaviour.  When set, the advisor returns its best feasible
            answer by the deadline and flags ``timed_out`` in the result's
            diagnostics.
        solve_tier: Anytime pipeline tier — one of ``"heuristic"``,
            ``"cascade"`` or ``"exact"``.  ``None`` resolves to ``"cascade"``
            when a time budget is set and ``"exact"`` otherwise (see
            :meth:`repro.lp.SolveBudget.from_spec`).
    """

    name: str = "cophy"
    options: Mapping[str, Any] = field(default_factory=dict)
    time_budget_ms: float | None = None
    solve_tier: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))
        if self.time_budget_ms is not None and self.time_budget_ms <= 0:
            raise ValueError(
                f"time_budget_ms must be positive, got {self.time_budget_ms}")
        if self.solve_tier is not None and self.solve_tier not in SOLVE_TIERS:
            raise ValueError(
                f"solve_tier must be one of {SOLVE_TIERS}, "
                f"got {self.solve_tier!r}")

    def solve_budget(self) -> SolveBudget | None:
        """The spec's anytime budget (``None`` when neither field is set)."""
        return SolveBudget.from_spec(self.time_budget_ms, self.solve_tier)


@dataclass(frozen=True)
class CostingSpec:
    """How the per-schema INUM cache behind a request is configured.

    Requests with equal costing specs share one cache (and therefore template
    plans, gamma matrices and workload tensors); a request with different
    enumeration caps gets its own cache, because caps change the template set
    and with it every INUM cost.
    """

    use_gamma_matrix: bool = True
    max_orders_per_table: int = DEFAULT_MAX_ORDERS_PER_TABLE
    max_templates_per_query: int = DEFAULT_MAX_TEMPLATES_PER_QUERY
    build_workers: int | None = None
    build_processes: int | None = None

    def to_provenance(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ScaleSpec:
    """Knobs of the scale-out pipeline (compress → partition → solve → merge).

    Only meaningful for the ``"scaleout"`` advisor; when a request carries a
    scale spec and no advisor spec, the scale-out advisor is implied.  Fields
    mirror :class:`repro.advisors.scaleout.ScaleOutAdvisor`.
    """

    signature: str = "structural"
    max_cost_error: float = 0.0
    compress: bool = True
    shard_count: int | None = None
    shard_workers: int | None = None
    budget_oversubscription: float | None = None

    def to_options(self) -> dict[str, Any]:
        """The spec as ``ScaleOutAdvisor`` constructor options."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    to_provenance = to_options


@dataclass
class TuningRequest:
    """One declarative tuning problem: everything a tune needs, no wiring.

    Attributes:
        workload: The workload being tuned.
        schema: The catalog it runs against.
        constraints: Hard and/or soft DBA constraints.
        candidates: Optional explicit candidate universe (a
            :class:`CandidateSet` or any iterable of :class:`Index`); when
            omitted the advisor runs its own candidate generation, exactly as
            the legacy constructors did.
        dba_indexes: Extra DBA-supplied candidates (``S_DBA``) merged into the
            candidate universe.
        advisor: An :class:`AdvisorSpec`, a bare registry name, or ``None``
            (= ``"cophy"``, or ``"scaleout"`` when ``scale`` is given).
        costing: Shared-cache configuration (see :class:`CostingSpec`).
        scale: Scale-out pipeline knobs; requires the ``"scaleout"`` advisor.
        per_statement_costs: Whether the result should carry per-statement
            INUM costs under the chosen configuration.  ``None`` evaluates
            only advisors wired to the shared gamma-matrix cache (CoPhy,
            ILP; not ``"scaleout"``, whose point is to never cost the full
            workload monolithically, and not the black-box baselines, which
            deliberately avoid INUM).  Explicit ``True`` always evaluates —
            through the per-statement loop when gamma matrices are disabled.
        request_id: Free-form correlation id echoed into the provenance.
    """

    workload: Workload
    schema: Schema
    constraints: Sequence[TuningConstraint | SoftConstraint] = ()
    candidates: CandidateSet | Sequence[Index] | None = None
    dba_indexes: Sequence[Index] = ()
    advisor: AdvisorSpec | str | None = None
    costing: CostingSpec = field(default_factory=CostingSpec)
    scale: ScaleSpec | None = None
    per_statement_costs: bool | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.workload, Workload):
            raise WorkloadError(
                f"TuningRequest.workload must be a Workload, got "
                f"{type(self.workload).__name__}")
        self.constraints = tuple(self.constraints)
        self.dba_indexes = tuple(self.dba_indexes)
        if isinstance(self.advisor, str):
            self.advisor = AdvisorSpec(self.advisor)
        if (self.scale is not None and self.advisor is not None
                and self.advisor.name != "scaleout"):
            raise ValueError(
                f"ScaleSpec requires the 'scaleout' advisor, not "
                f"{self.advisor.name!r}")

    def resolved_advisor(self) -> AdvisorSpec:
        """The effective advisor spec (scale-out implied by a scale spec)."""
        if self.advisor is not None:
            return self.advisor
        return AdvisorSpec("scaleout" if self.scale is not None else "cophy")

    def resolved_options(self) -> dict[str, Any]:
        """Advisor options with the scale spec merged in (explicit wins)."""
        options = dict(self.resolved_advisor().options)
        if self.scale is not None:
            for key, value in self.scale.to_options().items():
                options.setdefault(key, value)
        return options
