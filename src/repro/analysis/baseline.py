"""Baseline handling: grandfathered findings committed for review.

The baseline is a JSON document with one finding object per line, sorted, so
that a PR shrinking or growing it produces a line-per-finding diff:

    {
      "version": 1,
      "findings": [
        {"justification": "...", "message": "...", "path": "...", "rule": "..."}
      ]
    }

Entries match findings on ``(rule, path, message)`` — line numbers are
excluded on purpose so edits elsewhere in a file do not invalidate the
grandfathering.  Every entry carries a ``justification`` explaining why the
finding is acceptable; ``--update-baseline`` preserves justifications of
entries that survive and stamps new entries with a TODO marker that reviewers
are expected to replace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import Finding

__all__ = ["Baseline", "BaselineError", "split_by_baseline"]

_TODO = "TODO: justify this grandfathered finding"


class BaselineError(ValueError):
    """Raised for unreadable or structurally invalid baseline files."""


@dataclass
class Baseline:
    #: (rule, path, message) -> justification
    entries: dict[tuple[str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(
                f"baseline {path} is not a {{'version', 'findings'}} object")
        entries: dict[tuple[str, str, str], str] = {}
        for entry in payload["findings"]:
            try:
                key = (entry["rule"], entry["path"], entry["message"])
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"baseline {path}: entry missing rule/path/message: "
                    f"{entry!r}") from exc
            entries[key] = entry.get("justification", _TODO)
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        entries = {}
        for finding in findings:
            key = finding.baseline_key
            justification = _TODO
            if previous is not None and key in previous.entries:
                justification = previous.entries[key]
            entries[key] = justification
        return cls(entries=entries)

    def dump(self, path: Path) -> None:
        lines = ["{", '  "version": 1,', '  "findings": [']
        body = []
        for (rule, rel, message), justification in sorted(self.entries.items()):
            body.append("    " + json.dumps(
                {"justification": justification, "message": message,
                 "path": rel, "rule": rule},
                sort_keys=True, ensure_ascii=False))
        if body:
            lines.append(",\n".join(body))
        lines += ["  ]", "}", ""]
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines), encoding="utf-8")

    def __contains__(self, finding: Finding) -> bool:
        return finding.baseline_key in self.entries


def split_by_baseline(findings: Sequence[Finding], baseline: Baseline | None
                      ) -> tuple[list[Finding], list[Finding], list[tuple]]:
    """(new, grandfathered, stale-entry-keys) for a run against a baseline."""
    if baseline is None:
        return list(findings), [], []
    new = [finding for finding in findings if finding not in baseline]
    old = [finding for finding in findings if finding in baseline]
    seen = {finding.baseline_key for finding in findings}
    stale = [key for key in sorted(baseline.entries) if key not in seen]
    return new, old, stale
