"""Command-line front end: ``python -m repro.analysis``.

Exit codes are part of the CI contract:

* ``0`` — no findings outside the baseline (or ``--update-baseline`` wrote one)
* ``1`` — at least one finding outside the baseline
* ``2`` — usage error (unknown rule, unreadable baseline, bad flags)
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline, BaselineError, split_by_baseline
from repro.analysis.engine import run_analysis
from repro.analysis.loader import PragmaError
from repro.analysis.rules import ALL_RULES, rule_by_name

__all__ = ["main"]

_PACKAGE_ROOT = Path(__file__).resolve().parents[2]   # .../src
_REPO_ROOT = _PACKAGE_ROOT.parent                     # repo checkout
_DEFAULT_BASELINE = _REPO_ROOT / "analysis" / "baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: repo-specific static analysis for the "
                    "tuning stack")
    parser.add_argument("--root", type=Path, default=_PACKAGE_ROOT,
                        help="directory tree to analyze (default: the src/ "
                             "tree containing this package)")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="NAME",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: analysis/baseline.json when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline; report every finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current findings "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list available rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:28s} {rule.description}")
        return 0

    rules = None
    if options.rule:
        rules = []
        for name in options.rule:
            rule = rule_by_name(name)
            if rule is None:
                known = ", ".join(r.name for r in ALL_RULES)
                print(f"error: unknown rule '{name}' (known rules: {known})",
                      file=sys.stderr)
                return 2
            rules.append(rule)

    root = options.root.resolve()
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2

    baseline_path = options.baseline or _DEFAULT_BASELINE
    baseline = None
    if not options.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif options.baseline is not None and not options.update_baseline:
        print(f"error: baseline {baseline_path} does not exist",
              file=sys.stderr)
        return 2

    started = time.perf_counter()
    try:
        findings = run_analysis(root, rules=rules)
    except PragmaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if options.update_baseline:
        updated = Baseline.from_findings(findings, previous=baseline)
        updated.dump(baseline_path)
        print(f"wrote {len(updated.entries)} grandfathered finding(s) to "
              f"{baseline_path}")
        return 0

    new, grandfathered, stale = split_by_baseline(findings, baseline)
    for finding in new:
        print(finding.render())
    for key in stale:
        rule, rel, message = key
        print(f"note: stale baseline entry (no longer fires): "
              f"[{rule}] {rel}: {message}")
    print(f"reprolint: {len(new)} finding(s), {len(grandfathered)} "
          f"grandfathered, {len(stale)} stale baseline entr"
          f"{'y' if len(stale) == 1 else 'ies'} "
          f"({elapsed:.2f}s)")
    return 1 if new else 0
