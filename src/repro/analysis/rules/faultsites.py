"""fault-site-discipline: fault checks use declared sites and fire first.

PR 7's fault-injection contract: every ``maybe_check(plan, site, ...)`` /
``plan.check(site, ...)`` names a *literal* member of ``FAULT_SITES`` (so the
chaos lane's env plans can target it), and the check dominates the expensive
work in its function — a fault injected *after* the optimizer ran would test
nothing.  The rule reads ``FAULT_SITES`` from ``reliability/faults.py`` in
the scanned tree and checks both properties at every call site outside that
module.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project, call_name
from repro.analysis.rules.base import Finding, Rule

__all__ = ["FaultSiteRule"]

DEFAULT_FAULT_SITES = frozenset({"shard_solve", "matrix_build",
                                 "http_request", "solver"})

#: Method names that constitute "real work" a fault check must precede.
WORK_CALLS = frozenset({"prepare", "build_workload", "adopt_built",
                        "ensure_columns", "workload_tensor", "gamma_matrix",
                        "solve", "build_matrices", "tune"})


def _receiver_mentions(call: ast.Call, words: tuple[str, ...]) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    for sub in ast.walk(call.func.value):
        token = (sub.id if isinstance(sub, ast.Name)
                 else sub.attr if isinstance(sub, ast.Attribute) else "")
        if any(word in token.lower() for word in words):
            return True
    return False


def _site_argument(call: ast.Call) -> ast.expr | None:
    name = call_name(call)
    if name == "maybe_check":           # maybe_check(plan, site, ...)
        if len(call.args) >= 2:
            return call.args[1]
    elif name == "check":               # plan.check(site, ...)
        if call.args:
            return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "site":
            return keyword.value
    return None


class FaultSiteRule(Rule):
    name = "fault-site-discipline"
    description = ("fault checks must name literal FAULT_SITES members and "
                   "run before optimizer/cache work")

    def _sites(self, project: Project) -> frozenset[str]:
        module = project.find_module("reliability/faults.py")
        if module is None:
            return DEFAULT_FAULT_SITES
        sites = project.assigned_strings(module, "FAULT_SITES")
        return frozenset(sites) or DEFAULT_FAULT_SITES

    def check_project(self, project: Project) -> Iterable[Finding]:
        sites = self._sites(project)
        defining = project.find_module("reliability/faults.py")
        for info in project.functions.values():
            module = info.module
            if module is defining:
                continue  # the plan/check machinery itself, not a call site
            check_lines: list[int] = []
            for site_call in info.calls:
                if site_call.name == "maybe_check" or (
                        site_call.name == "check"
                        and _receiver_mentions(site_call.node,
                                               ("plan", "fault"))):
                    check_lines.append(site_call.lineno)
                    yield from self._check_site_literal(
                        module, site_call.node, sites)
            if not check_lines:
                continue
            first_check = min(check_lines)
            for work in info.calls:
                if work.name in WORK_CALLS and work.lineno < first_check:
                    yield self.finding(
                        module, first_check,
                        f"fault check in '{info.name}' fires after "
                        f"'{work.name}' — the check must dominate the work "
                        "it is meant to interrupt")
                    break

    def _check_site_literal(self, module: SourceModule, call: ast.Call,
                            sites: frozenset[str]) -> Iterable[Finding]:
        site = _site_argument(call)
        if site is None:
            yield self.finding(module, call,
                               "fault check without a site argument")
        elif not (isinstance(site, ast.Constant)
                  and isinstance(site.value, str)):
            yield self.finding(
                module, call,
                "fault-check site must be a string literal so chaos plans "
                "can target it")
        elif site.value not in sites:
            yield self.finding(
                module, call,
                f"fault-check site '{site.value}' is not a member of "
                "FAULT_SITES")
