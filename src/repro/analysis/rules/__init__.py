"""Rule registry for reprolint."""

from __future__ import annotations

from repro.analysis.rules.base import Finding, Rule
from repro.analysis.rules.buffers import BoundedBufferRule
from repro.analysis.rules.faultsites import FaultSiteRule
from repro.analysis.rules.fingerprint import FingerprintPurityRule
from repro.analysis.rules.hygiene import RuntimeAssertRule, UnusedImportRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.metrics import MetricLabelRule
from repro.analysis.rules.pickling import PickleHashRule
from repro.analysis.rules.wire import WireCompletenessRule

__all__ = ["Finding", "Rule", "ALL_RULES", "rule_by_name"]

#: Every shipped rule, instantiated once; order is the report order.
ALL_RULES: tuple[Rule, ...] = (
    FingerprintPurityRule(),
    FaultSiteRule(),
    LockDisciplineRule(),
    MetricLabelRule(),
    BoundedBufferRule(),
    WireCompletenessRule(),
    PickleHashRule(),
    RuntimeAssertRule(),
    UnusedImportRule(),
)


def rule_by_name(name: str) -> Rule | None:
    for rule in ALL_RULES:
        if rule.name == name:
            return rule
    return None
