"""metric-label-cardinality: metric labels come from bounded sets only.

PR 8's exposition contract: every label value on ``.inc()`` / ``.observe()``
/ ``.set()`` / ``.labels()`` derives from a bounded set — advisor registry
names, ``FAULT_SITES``, route patterns, enum names, literal event strings —
never raw paths, statement names or interpolated request data, which would
grow an unbounded number of series and blow up the scrape.  The bounded sets
themselves are pinned in the ``obs/metrics.py`` docstrings.

A label value is accepted when it is a literal, a parameter whose name is one
of the documented bounded-domain names, a local assigned from an accepted
expression, an enum ``.name``/``.value`` access (optionally case-folded), or
a call to an allowlisted bounded derivation (``_endpoint_pattern``,
``canonical_name``).  F-strings, ``%``/``.format``/concatenation and any
other dynamic expression are findings.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project, call_name
from repro.analysis.rules.base import Finding, Rule, keyword_arguments

__all__ = ["MetricLabelRule"]

_LABEL_METHODS = frozenset({"inc", "observe", "labels"})
_SET_TOKENS = ("metric", "counter", "gauge", "histogram")

#: Parameter names whose values are validated/bounded upstream (see the
#: bounded-set table in ``obs/metrics.py``).
BOUNDED_PARAMS = frozenset({"site", "event", "cache", "advisor",
                            "advisor_name", "tier", "solve_tier", "status",
                            "endpoint",
                            "method", "outcome", "kind", "stage", "code",
                            "route", "label", "reason"})

#: Functions documented to return bounded values.
BOUNDED_DERIVATIONS = frozenset({"_endpoint_pattern", "canonical_name"})

_CASE_FOLDS = frozenset({"lower", "upper"})

#: Keyword arguments of the metric methods that are NOT labels: ``exemplar``
#: deliberately carries a per-request trace id (it becomes snapshot metadata
#: on the one slowest sample, never a new series).
_NON_LABEL_KWARGS = frozenset({"exemplar"})


def _receiver_mentions_metric(call: ast.Call) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    for sub in ast.walk(call.func.value):
        token = (sub.id if isinstance(sub, ast.Name)
                 else sub.attr if isinstance(sub, ast.Attribute)
                 else call_name(sub) or "" if isinstance(sub, ast.Call)
                 else "")
        if token and any(word in token.lower() for word in _SET_TOKENS):
            return True
    return False


class MetricLabelRule(Rule):
    name = "metric-label-cardinality"
    description = "metric label values must derive from bounded sets"

    def visit(self, module: SourceModule,
              project: Project) -> Iterable[Finding]:
        if module.relpath.endswith("obs/metrics.py"):
            return  # the registry's own machinery handles labels generically
        for info in project.functions.values():
            if info.module is not module:
                continue
            params = {arg.arg for arg in info.node.args.args}
            params |= {arg.arg for arg in info.node.args.kwonlyargs}
            assigns: dict[str, ast.expr] = {}
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            assigns[target.id] = node.value
            for site in info.calls:
                name = site.name
                if name not in _LABEL_METHODS and not (
                        name == "set"
                        and _receiver_mentions_metric(site.node)):
                    continue
                if name in ("inc", "observe", "set") and not (
                        isinstance(site.node.func, ast.Attribute)):
                    continue  # bare inc()/observe() helpers, not metric calls
                for arg, value in keyword_arguments(site.node):
                    if arg in _NON_LABEL_KWARGS:
                        continue
                    if not self._bounded(value, params, assigns, depth=0):
                        yield self.finding(
                            module, value,
                            f"label '{arg}' is not derived from a bounded "
                            "set (literal, bounded parameter, enum .name, or "
                            "allowlisted derivation); unbounded labels grow "
                            "one series per value")

    # ------------------------------------------------------------ classification
    def _bounded(self, expr: ast.expr, params: set[str],
                 assigns: dict[str, ast.expr], depth: int) -> bool:
        if depth > 6:
            return False
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (str, int, bool, type(None)))
        if isinstance(expr, ast.Name):
            if expr.id in assigns:
                return self._bounded(assigns[expr.id], params, assigns,
                                     depth + 1)
            return expr.id in params and expr.id in BOUNDED_PARAMS
        if isinstance(expr, ast.Attribute):
            # enum member access, or an attribute named after a documented
            # bounded domain (e.g. ``budget.tier`` — tiers are validated
            # against a closed set on construction).
            return expr.attr in ("name", "value") or expr.attr in BOUNDED_PARAMS
        if isinstance(expr, ast.IfExp):
            return (self._bounded(expr.body, params, assigns, depth + 1)
                    and self._bounded(expr.orelse, params, assigns, depth + 1))
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in _CASE_FOLDS and isinstance(expr.func, ast.Attribute):
                return self._bounded(expr.func.value, params, assigns,
                                     depth + 1)
            if name in BOUNDED_DERIVATIONS:
                return True
            if name == "str" and len(expr.args) == 1:
                return self._bounded(expr.args[0], params, assigns, depth + 1)
            return False
        # JoinedStr (f-strings), BinOp (% / +), Subscript, ... are unbounded.
        return False
