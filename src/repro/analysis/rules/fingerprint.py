"""fingerprint-purity: wall-clock values must not leak into fingerprints.

``TuningResult.fingerprint()`` (PR 4) strips the keys declared in
``_TIMING_KEYS`` / ``_VOLATILE_KEYS`` in ``api/result.py`` before hashing, so
remote and local runs of the same request compare equal.  The invariant rots
when a later PR stores a ``time.time()`` / ``perf_counter()`` derived value
under a key the stripper does not know about.  This rule taints values that
flow from clock calls inside each function and flags any tainted value stored
under a key that is neither declared in those sets nor self-evidently a
timing key (``*seconds*``, ``*timing*``, ``*duration*``, ``*elapsed*``,
``*_ms``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project, call_name
from repro.analysis.rules.base import Finding, Rule, keyword_arguments

__all__ = ["FingerprintPurityRule"]

#: Call names whose return value is wall-clock derived.
CLOCK_CALLS = frozenset({"time", "perf_counter", "monotonic", "process_time",
                         "now", "utcnow", "thread_time"})

#: Fallbacks used when ``api/result.py`` is not part of the scanned tree
#: (fixture runs); on the real repo the sets are parsed from source.
DEFAULT_TIMING_KEYS = frozenset({"timings", "elapsed_seconds", "solve_seconds",
                                 "total_seconds", "seconds"})
DEFAULT_VOLATILE_KEYS = frozenset({"retries", "faults_survived", "trace",
                                   "profile"})

_TIMING_WORDS = ("seconds", "timing", "duration", "elapsed", "_ms")

#: Packages whose payloads are never fingerprinted (bench reports, trace
#: export) — scanning them would only produce noise.
_SKIP_FRAGMENTS = ("/bench/", "/obs/", "/analysis/")

#: Constructor-ish call names whose keyword arguments land in fingerprinted
#: payloads.
_PAYLOAD_CALLS = ("TuningDiagnostics", "TuningResult", "replace")


def _is_clock_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and call_name(node) in CLOCK_CALLS)


class FingerprintPurityRule(Rule):
    name = "fingerprint-purity"
    description = ("wall-clock derived values stored under keys the "
                   "fingerprint stripper does not declare")

    def _allowed_keys(self, project: Project) -> frozenset[str]:
        module = project.find_module("api/result.py")
        if module is None:
            return DEFAULT_TIMING_KEYS | DEFAULT_VOLATILE_KEYS
        keys = (project.assigned_strings(module, "_TIMING_KEYS")
                | project.assigned_strings(module, "_VOLATILE_KEYS"))
        return frozenset(keys) or (DEFAULT_TIMING_KEYS | DEFAULT_VOLATILE_KEYS)

    def check_project(self, project: Project) -> Iterable[Finding]:
        allowed = self._allowed_keys(project)
        for module in project.iter_modules():
            probe = f"/{module.relpath}"
            if any(fragment in probe for fragment in _SKIP_FRAGMENTS):
                continue
            for info in project.functions.values():
                if info.module is module:
                    yield from self._check_function(module, info.node, allowed)

    # ---------------------------------------------------------------- helpers
    def _safe_key(self, key: str, allowed: frozenset[str]) -> bool:
        lowered = key.lower()
        return key in allowed or any(word in lowered for word in _TIMING_WORDS)

    def _check_function(self, module: SourceModule, func: ast.AST,
                        allowed: frozenset[str]) -> Iterable[Finding]:
        tainted: set[str] = set()

        def is_tainted(expr: ast.expr) -> bool:
            for sub in ast.walk(expr):
                if _is_clock_call(sub):
                    return True
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    return True
            return False

        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and is_tainted(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            elif isinstance(node, ast.AugAssign):
                if is_tainted(node.value) and isinstance(node.target, ast.Name):
                    tainted.add(node.target.id)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                if name in _PAYLOAD_CALLS or name.endswith("Diagnostics"):
                    for arg, value in keyword_arguments(node):
                        if is_tainted(value) and not self._safe_key(arg, allowed):
                            yield self.finding(
                                module, node,
                                f"wall-clock value passed to {name}(...) as "
                                f"'{arg}', which is not declared in "
                                "_TIMING_KEYS/_VOLATILE_KEYS")
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (key is not None and isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and is_tainted(value)
                            and not self._safe_key(key.value, allowed)):
                        yield self.finding(
                            module, value,
                            f"wall-clock value stored under dict key "
                            f"'{key.value}', which is not declared in "
                            "_TIMING_KEYS/_VOLATILE_KEYS")

        # Second pass for subscript stores of tainted names (taint set is now
        # complete, so ``x = perf_counter(); d['k'] = x`` is caught even when
        # the store precedes the walk order of the taint assignment).
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and is_tainted(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        yield from self._check_subscript(
                            module, target, allowed)

    def _check_subscript(self, module: SourceModule, target: ast.Subscript,
                         allowed: frozenset[str]) -> Iterable[Finding]:
        key = target.slice
        base = target.value
        base_names = "".join(
            sub.id.lower() if isinstance(sub, ast.Name) else sub.attr.lower()
            for sub in ast.walk(base)
            if isinstance(sub, (ast.Name, ast.Attribute)))
        if "timing" in base_names:
            return
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if not self._safe_key(key.value, allowed):
                yield self.finding(
                    module, target,
                    f"wall-clock value stored under key '{key.value}', which "
                    "is not declared in _TIMING_KEYS/_VOLATILE_KEYS")
