"""worker-pickle-safety: cached hashes must be recomputed in __setstate__.

PR 3 ships shard solves to worker processes, so ``Index``, ``TemplatePlan``
and friends cross the pickle boundary.  Their cached ``_hash`` attributes are
salted per-process (``PYTHONHASHSEED``-style), so a ``_hash`` smuggled
through ``__getstate__`` would poison every dict lookup on the far side; the
established pattern pops it in ``__getstate__`` and recomputes in
``__setstate__``.  This rule flags any class that writes a ``*_hash``-style
cached attribute without a ``__setstate__`` that mentions it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project
from repro.analysis.rules.base import Finding, Rule

__all__ = ["PickleHashRule"]


def _hash_attr(name: str) -> bool:
    return name == "_hash" or name.endswith("_hash")


def _writes_hash(node: ast.ClassDef) -> tuple[str, int] | None:
    """The cached-hash attribute a class writes, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if (isinstance(target, ast.Attribute)
                        and _hash_attr(target.attr)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return target.attr, sub.lineno
        if isinstance(sub, ast.Call):
            # frozen dataclasses: object.__setattr__(self, "_hash", ...)
            func = sub.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__" and len(sub.args) >= 2):
                key = sub.args[1]
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and _hash_attr(key.value)):
                    return key.value, sub.lineno
    return None


def _setstate_mentions(node: ast.ClassDef, attr: str) -> bool:
    for stmt in node.body:
        if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__setstate__"):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Attribute) and sub.attr == attr:
                    return True
                if (isinstance(sub, ast.Constant)
                        and sub.value == attr):
                    return True
    return False


class PickleHashRule(Rule):
    name = "worker-pickle-safety"
    description = ("classes caching a *_hash attribute must recompute it in "
                   "__setstate__ (process-boundary hash salt)")

    def visit(self, module: SourceModule,
              project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            written = _writes_hash(node)
            if written is None:
                continue
            attr, lineno = written
            if not _setstate_mentions(node, attr):
                yield self.finding(
                    module, lineno,
                    f"class '{node.name}' caches '{attr}' but has no "
                    "__setstate__ recomputing it — the cached value is "
                    "poison after crossing a process boundary")
