"""Rule framework: findings, the rule base class and shared AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project

__all__ = ["Finding", "Rule", "keyword_arguments", "is_test_path"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str       # repo-relative posix path
    line: int
    message: str
    severity: str = "error"

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        # Line numbers are deliberately excluded so unrelated edits above a
        # grandfathered finding do not invalidate the baseline entry.
        return (self.rule, self.path, self.message)

    @property
    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class: subclasses override ``visit`` and/or ``check_project``.

    ``visit`` runs once per module and suits purely local rules;
    ``check_project`` runs once with the whole :class:`Project` and suits
    rules that need the call graph or cross-module configuration.  The
    engine applies inline ``# reprolint: disable=`` suppressions afterwards,
    so rules simply emit every violation they see.
    """

    name: str = "abstract"
    description: str = ""
    severity: str = "error"

    def visit(self, module: SourceModule,
              project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    # ------------------------------------------------------------------ sugar
    def finding(self, module: SourceModule, node: ast.AST | int,
                message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(rule=self.name, path=module.relpath, line=line,
                       message=message, severity=self.severity)


def keyword_arguments(call: ast.Call) -> Iterator[tuple[str, ast.expr]]:
    """Named keyword arguments of a call (ignores ``**kwargs`` splats)."""
    for keyword in call.keywords:
        if keyword.arg is not None:
            yield keyword.arg, keyword.value


def is_test_path(relpath: str) -> bool:
    return relpath.startswith("tests/") or "/tests/" in relpath
