"""wire-codec-completeness: every request/result field survives the wire.

PR 5's round-trip guarantee is only as strong as the codec's coverage: a
field added to ``TuningRequest`` / ``AdvisorSpec`` / ``TuningDiagnostics``
that ``server/wire.py`` or ``api/result.py`` never mentions is silently
dropped on the first remote tuning run.  This rule compares the dataclass
surfaces against the codec source:

* every ``TuningRequest`` field is declared in ``_REQUEST_FIELDS`` and
  mentioned in both encode- and decode-side functions of ``wire.py``;
* every ``AdvisorSpec`` field is declared in ``_ADVISOR_FIELDS``; fields
  newer than wire version 1 (``_ADVISOR_FIELDS - _ADVISOR_FIELDS_V1``) must
  additionally sit under an ``if`` in the encoder (the version bump) and the
  decoder must select the field set by version (a conditional referencing
  ``_ADVISOR_FIELDS_V1``);
* ``CostingSpec`` / ``ScaleSpec`` are covered generically when the codec
  iterates ``fields(...)`` on encode and calls ``_decode_spec`` on decode —
  otherwise every field must appear literally;
* every ``TuningDiagnostics`` / ``TuningResult`` field is mentioned in both
  ``to_payload`` and ``from_payload`` (``advisor_name`` travels as
  ``advisor``; ``extras`` is intentionally outside the payload contract).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project, literal_strings
from repro.analysis.rules.base import Finding, Rule

__all__ = ["WireCompletenessRule"]

#: Dataclass field -> wire name when they differ.
_FIELD_ALIASES = {"advisor_name": "advisor"}

#: Fields deliberately outside the wire contract.
_EXEMPT_FIELDS = frozenset({"extras"})


def _dataclass_fields(module: SourceModule, class_name: str) -> list[tuple[str, int]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            out = []
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and not stmt.target.id.startswith("_")):
                    out.append((stmt.target.id, stmt.lineno))
            return out
    return []


class WireCompletenessRule(Rule):
    name = "wire-codec-completeness"
    description = ("every request/spec/result dataclass field must appear in "
                   "encode and decode, version-gated when newer than v1")

    def check_project(self, project: Project) -> Iterable[Finding]:
        specs = project.find_module("api/specs.py")
        wire = project.find_module("server/wire.py")
        result = project.find_module("api/result.py")
        if wire is not None and specs is not None:
            yield from self._check_request(project, specs, wire)
            yield from self._check_advisor(project, specs, wire)
            yield from self._check_generic_specs(project, specs, wire)
        if result is not None:
            yield from self._check_payloads(project, result)

    # ------------------------------------------------------------------ sides
    def _side_strings(self, project: Project, module: SourceModule,
                      fragment: str) -> set[str]:
        strings: set[str] = set()
        for info in project.functions.values():
            if info.module is module and fragment in info.name:
                strings |= literal_strings(info.node)
        return strings

    def _check_request(self, project: Project, specs: SourceModule,
                       wire: SourceModule) -> Iterable[Finding]:
        declared = project.assigned_strings(wire, "_REQUEST_FIELDS")
        encode = self._side_strings(project, wire, "encode")
        decode = self._side_strings(project, wire, "decode")
        for field, lineno in _dataclass_fields(specs, "TuningRequest"):
            name = _FIELD_ALIASES.get(field, field)
            if field in _EXEMPT_FIELDS:
                continue
            if declared and name not in declared:
                yield self.finding(
                    specs, lineno,
                    f"TuningRequest.{field} is not declared in "
                    "_REQUEST_FIELDS in server/wire.py")
            elif name not in encode:
                yield self.finding(
                    specs, lineno,
                    f"TuningRequest.{field} never appears on the encode side "
                    "of server/wire.py — the field is dropped on the wire")
            elif name not in decode:
                yield self.finding(
                    specs, lineno,
                    f"TuningRequest.{field} never appears on the decode side "
                    "of server/wire.py — the field is dropped on the wire")

    def _check_advisor(self, project: Project, specs: SourceModule,
                       wire: SourceModule) -> Iterable[Finding]:
        declared = project.assigned_strings(wire, "_ADVISOR_FIELDS")
        v1 = project.assigned_strings(wire, "_ADVISOR_FIELDS_V1")
        fields = _dataclass_fields(specs, "AdvisorSpec")
        for field, lineno in fields:
            if field in _EXEMPT_FIELDS:
                continue
            if declared and field not in declared:
                yield self.finding(
                    specs, lineno,
                    f"AdvisorSpec.{field} is not declared in _ADVISOR_FIELDS "
                    "in server/wire.py")
        if not (declared and v1):
            return
        v2plus = declared - v1
        gated = self._encode_if_strings(project, wire)
        for field, lineno in fields:
            if field in v2plus and field not in gated:
                yield self.finding(
                    specs, lineno,
                    f"AdvisorSpec.{field} is newer than wire version 1 but "
                    "the encoder writes it unconditionally — gate it behind "
                    "the version bump")
        if v2plus and not self._decode_selects_by_version(project, wire):
            yield self.finding(
                wire, 1,
                "decode side accepts post-v1 advisor fields without "
                "selecting the field set by wire version")

    def _encode_if_strings(self, project: Project,
                           wire: SourceModule) -> set[str]:
        strings: set[str] = set()
        for info in project.functions.values():
            if info.module is wire and "encode" in info.name:
                for node in ast.walk(info.node):
                    if isinstance(node, ast.If):
                        strings |= literal_strings(node)
        return strings

    def _decode_selects_by_version(self, project: Project,
                                   wire: SourceModule) -> bool:
        for info in project.functions.values():
            if info.module is wire and "decode" in info.name:
                for node in ast.walk(info.node):
                    if isinstance(node, (ast.If, ast.IfExp)):
                        for sub in ast.walk(node):
                            if (isinstance(sub, ast.Name)
                                    and sub.id.endswith("_V1")):
                                return True
        return False

    def _check_generic_specs(self, project: Project, specs: SourceModule,
                             wire: SourceModule) -> Iterable[Finding]:
        encode_calls: set[str] = set()
        decode_calls: set[str] = set()
        for info in project.functions.values():
            if info.module is not wire:
                continue
            for site in info.calls:
                if "encode" in info.name:
                    encode_calls.add(site.name)
                if "decode" in info.name:
                    decode_calls.add(site.name)
        generic = "fields" in encode_calls and "_decode_spec" in decode_calls
        if generic:
            return
        encode = self._side_strings(project, wire, "encode")
        decode = self._side_strings(project, wire, "decode")
        for cls in ("CostingSpec", "ScaleSpec"):
            for field, lineno in _dataclass_fields(specs, cls):
                if field not in encode or field not in decode:
                    yield self.finding(
                        specs, lineno,
                        f"{cls}.{field} is not covered by server/wire.py "
                        "(no generic fields()/_decode_spec path and no "
                        "literal mention)")

    # --------------------------------------------------------------- payloads
    def _check_payloads(self, project: Project,
                        result: SourceModule) -> Iterable[Finding]:
        to_payload: set[str] = set()
        from_payload: set[str] = set()
        for info in project.functions.values():
            if info.module is not result:
                continue
            if info.name == "to_payload":
                to_payload |= literal_strings(info.node)
            elif info.name == "from_payload":
                from_payload |= literal_strings(info.node)
        if not to_payload or not from_payload:
            return
        for cls in ("TuningDiagnostics", "TuningResult"):
            for field, lineno in _dataclass_fields(result, cls):
                name = _FIELD_ALIASES.get(field, field)
                if field in _EXEMPT_FIELDS:
                    continue
                if name not in to_payload:
                    yield self.finding(
                        result, lineno,
                        f"{cls}.{field} is missing from to_payload — the "
                        "field is dropped on the wire")
                elif name not in from_payload:
                    yield self.finding(
                        result, lineno,
                        f"{cls}.{field} is missing from from_payload — the "
                        "field is dropped on decode")
