"""lock-discipline: shared INUM cache mutation stays under the context lock.

PR 4's concurrency contract: ``InumCache`` does not lock itself — every
mutating pipeline (``prepare``, ``ensure_columns``, ``adopt_built``,
lazy tensor/matrix builds) is serialized by the owning ``SchemaContext``'s
RLock (or the service's ``_stats_lock``).  This rule walks the name-based
call graph *backwards* from every mutator call site outside ``inum/`` and
requires each path to hit, before reaching an entry point, either

* a ``with <...lock...>:`` block in some caller, or
* a function annotated ``# reprolint: requires-lock`` (the documented
  "caller must serialize" contracts: worker-process entry points whose cache
  is process-local, and single-threaded embedding APIs).

A mutator reachable from an unannotated root is a finding: some entry point
can reach the shared cache without any serialization story.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.project import FunctionInfo, Project
from repro.analysis.rules.base import Finding, Rule

__all__ = ["LockDisciplineRule"]

MUTATORS = frozenset({"prepare", "ensure_columns", "adopt_built",
                      "build_workload", "workload_tensor", "gamma_matrix"})

#: Receiver tokens identifying the shared cache (or one of its views).
_RECEIVER_TOKENS = ("inum", "cache", "tensor", "gamma", "matrix")

_MAX_DEPTH = 24


def _cache_receiver(call: ast.Call) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    for sub in ast.walk(call.func.value):
        token = (sub.id if isinstance(sub, ast.Name)
                 else sub.attr if isinstance(sub, ast.Attribute) else "")
        if any(word in token.lower() for word in _RECEIVER_TOKENS):
            return True
    return False


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = ("InumCache mutators must be reachable only via lock-held "
                   "or requires-lock-annotated frames")

    def check_project(self, project: Project) -> Iterable[Finding]:
        self._safe_memo: dict[str, bool] = {}
        for info in project.functions.values():
            if "/inum/" in f"/{info.module.relpath}":
                continue  # the cache's own internals
            for site in info.calls:
                if site.name not in MUTATORS:
                    continue
                if not _cache_receiver(site.node):
                    continue
                if site.in_lock or self._frame_safe(project, info, 0):
                    continue
                yield self.finding(
                    info.module, site.lineno,
                    f"'{site.name}' mutates the shared INUM cache but "
                    f"'{info.qualname.split(':', 1)[1]}' can be entered "
                    "without the context lock; wrap the call in `with "
                    "context.lock` or annotate the function "
                    "`# reprolint: requires-lock`")

    # -------------------------------------------------------------- reachability
    def _frame_safe(self, project: Project, info: FunctionInfo,
                    depth: int) -> bool:
        """True when every path into *info* holds a lock before entering."""
        if info.requires_lock:
            return True
        if depth >= _MAX_DEPTH:
            return False
        memo = self._safe_memo
        cached = memo.get(info.qualname)
        if cached is not None:
            return cached
        memo[info.qualname] = True  # optimistic for cycles
        callers = [
            (caller, site) for caller, site in project.callers_of(info.name)
            if caller.qualname != info.qualname]
        if not callers:
            memo[info.qualname] = False  # unannotated root
            return False
        safe = all(site.in_lock or self._frame_safe(project, caller, depth + 1)
                   for caller, site in callers)
        memo[info.qualname] = safe
        return safe
