"""Hygiene rules: assert-as-runtime-check and unused imports.

``runtime-assert``: an ``assert`` in library code vanishes under ``python
-O``, so an invariant guarded by one silently stops being checked in
optimized deployments — library invariants raise typed exceptions instead.

``unused-import``: an imported name never referenced again.  Usage is judged
by whole-word occurrence anywhere in the module source outside the import
statement itself, which deliberately errs toward keeping an import (mentions
in docstrings, comments or string annotations count as uses) — right bias
for a sweep tool that edits a real codebase.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project
from repro.analysis.rules.base import Finding, Rule

__all__ = ["RuntimeAssertRule", "UnusedImportRule"]


class RuntimeAssertRule(Rule):
    name = "runtime-assert"
    description = ("library invariants must raise typed exceptions, not "
                   "assert (stripped under python -O)")

    def visit(self, module: SourceModule,
              project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module, node,
                    "assert used as a runtime check — it vanishes under "
                    "`python -O`; raise a typed exception instead")


def _imported_bindings(tree: ast.Module) -> Iterable[tuple[str, ast.stmt]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".", 1)[0]
                yield name, node
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield alias.asname or alias.name, node


class UnusedImportRule(Rule):
    name = "unused-import"
    description = "imported name is never referenced in the module"
    severity = "warning"

    def visit(self, module: SourceModule,
              project: Project) -> Iterable[Finding]:
        if module.relpath.endswith("__init__.py"):
            return  # re-export surfaces are used from outside the module
        exported = set()
        for node in module.tree.body:
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in node.targets)):
                exported = {s for s in ast.walk(node.value)
                            if isinstance(s, ast.Constant)}
                exported = {s.value for s in exported
                            if isinstance(s.value, str)}
        for name, node in _imported_bindings(module.tree):
            if name.startswith("_") or name in exported:
                continue
            span = set(range(node.lineno, (node.end_lineno or node.lineno) + 1))
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            used = any(pattern.search(line)
                       for lineno, line in enumerate(module.lines, start=1)
                       if lineno not in span)
            if not used:
                yield self.finding(
                    module, node,
                    f"imported name '{name}' is unused")
