"""bounded-buffer: ``obs/`` collections retaining per-request state are bounded.

The observability layer is the one part of the stack that *accumulates*
per-request artefacts (traces, hotspot tables, samples) inside a long-lived
server process.  PR 10's contract: every such collection is constructed with
an explicit capacity bound — a literal, a constructor parameter, or an
``int(parameter)`` coercion — so a busy server's memory stays flat no matter
how many requests it serves.

Two checks, both scoped to ``obs/`` modules:

* every ``collections.deque`` constructed there must pass ``maxlen=`` (an
  unbounded deque is the classic accidental ring-buffer-without-the-ring);
* every class exposing a ``record(...)`` method (the per-request retention
  idiom — :class:`~repro.obs.store.TraceStore` is the archetype) must have an
  ``__init__`` that assigns at least one ``self.<capacity-ish>`` attribute
  from a bounded expression.  Capacity-ish means the attribute name contains
  one of ``capacity`` / ``maxlen`` / ``limit`` / ``size``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.loader import SourceModule
from repro.analysis.project import Project, call_name
from repro.analysis.rules.base import Finding, Rule, keyword_arguments

__all__ = ["BoundedBufferRule"]

#: Attribute-name fragments that denote a capacity bound.
_CAPACITY_WORDS = ("capacity", "maxlen", "limit", "size")


def _is_bounded_expr(expr: ast.expr, params: set[str]) -> bool:
    """Literal int, a constructor parameter, or int()/min() over those."""
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, int) and not isinstance(expr.value, bool)
    if isinstance(expr, ast.Name):
        return expr.id in params
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("int", "min", "max"):
            return all(_is_bounded_expr(arg, params) for arg in expr.args)
    return False


class BoundedBufferRule(Rule):
    name = "bounded-buffer"
    description = ("obs/ collections retaining per-request state must be "
                   "constructed with a capacity bound")

    def visit(self, module: SourceModule,
              project: Project) -> Iterable[Finding]:
        if "/obs/" not in f"/{module.relpath}":
            return
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call) and call_name(node) == "deque"
                    and "maxlen" not in dict(keyword_arguments(node))):
                yield self.finding(
                    module, node,
                    "deque in obs/ constructed without maxlen=; per-request "
                    "retention must be capacity-bounded")
            if isinstance(node, ast.ClassDef):
                yield from self._check_recorder(module, node)

    # ---------------------------------------------------------------- helpers
    def _check_recorder(self, module: SourceModule,
                        cls: ast.ClassDef) -> Iterable[Finding]:
        methods = {entry.name: entry for entry in cls.body
                   if isinstance(entry, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
        if "record" not in methods:
            return
        init = methods.get("__init__")
        if init is not None and self._declares_bound(init):
            return
        yield self.finding(
            module, cls,
            f"class {cls.name} records per-request state but its __init__ "
            "assigns no capacity bound (self.<capacity|maxlen|limit|size> "
            "from a literal or parameter)")

    def _declares_bound(self, init: ast.FunctionDef) -> bool:
        params = {arg.arg for arg in init.args.args}
        params |= {arg.arg for arg in init.args.kwonlyargs}
        params.discard("self")
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and any(word in target.attr.lower()
                                for word in _CAPACITY_WORDS)
                        and _is_bounded_expr(node.value, params)):
                    return True
        return False
