"""The reprolint engine: load a tree, run rules, apply suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.project import Project, load_project
from repro.analysis.rules import ALL_RULES, Finding, Rule

__all__ = ["run_analysis", "analyze_project"]


def analyze_project(project: Project,
                    rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run *rules* (default: all) over a loaded project.

    Parse failures surface as ``parse-error`` findings so a broken file fails
    the lint run instead of silently shrinking its scope.  Inline
    ``# reprolint: disable=<rule>`` pragmas are applied here, after the rules
    ran, so rules emit unconditionally.
    """
    active = list(rules if rules is not None else ALL_RULES)
    findings: set[Finding] = {
        Finding(rule="parse-error", path=relpath, line=lineno, message=message)
        for relpath, lineno, message in project.errors}
    for rule in active:
        for module in project.iter_modules():
            findings.update(rule.visit(module, project))
        findings.update(rule.check_project(project))
    modules = {module.relpath: module for module in project.iter_modules()}
    kept = []
    for finding in findings:
        module = modules.get(finding.path)
        if module is not None and module.suppressed(finding.rule,
                                                    finding.line):
            continue
        kept.append(finding)
    return sorted(kept, key=lambda finding: finding.sort_key)


def run_analysis(root: Path,
                 rules: Sequence[Rule] | None = None,
                 paths: Iterable[Path] | None = None) -> list[Finding]:
    """Load the tree under *root* and analyze it."""
    return analyze_project(load_project(root, paths=paths), rules=rules)
