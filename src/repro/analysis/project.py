"""Project-wide symbol table and call graph for reprolint.

The model is deliberately name-based: a call site ``x.m(...)`` links to every
project function named ``m`` and a bare call ``f(...)`` to every project
function named ``f``.  That over-approximates the true call graph, which is
the right bias for a linter — rules that walk *callers* (lock discipline) see
a superset of real paths, so a clean run is meaningful, and noisy edges are
silenced with annotations rather than by weakening the graph.

Lock tracking is lexical: every ``with`` statement whose context expression
mentions a name containing ``lock`` contributes a line range, and a call site
inside such a range is considered lock-protected.  Lambdas are folded into
their enclosing function (the closures the repo passes to retry policies run
synchronously on the caller's frame); nested ``def``s get their own frame.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.loader import SourceModule, iter_source_files, load_module

__all__ = ["CallSite", "FunctionInfo", "Project", "load_project",
           "call_name", "literal_strings"]


def call_name(node: ast.Call) -> str | None:
    """The simple name a call dispatches on: ``m`` for ``x.m()`` and ``f()``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def literal_strings(node: ast.AST) -> set[str]:
    """Every string constant anywhere under *node*."""
    return {sub.value for sub in ast.walk(node)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str)}


def _mentions_lock(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
    return False


@dataclass
class CallSite:
    name: str               # simple callee name
    node: ast.Call
    lineno: int
    in_lock: bool           # lexically inside a with-lock range


@dataclass
class FunctionInfo:
    qualname: str           # "repro.api.tuner:Tuner.tune"
    name: str               # simple name, "tune"
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    start: int
    end: int
    requires_lock: bool = False
    lock_ranges: list[tuple[int, int]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    def in_lock_range(self, lineno: int) -> bool:
        return any(start <= lineno <= end for start, end in self.lock_ranges)


class _FunctionCollector(ast.NodeVisitor):
    """Collect FunctionInfo frames, with-lock ranges and call sites."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.functions: list[FunctionInfo] = []
        self._class_stack: list[str] = []
        self._frame_stack: list[FunctionInfo] = []

    # -------------------------------------------------------------- structure
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        prefix = ".".join(self._class_stack)
        local = f"{prefix}.{node.name}" if prefix else node.name
        qualname = f"{self.module.modname}:{local}"
        # An annotation counts on the signature lines or anywhere in the
        # contiguous comment/decorator block directly above the ``def``.
        first = node.lineno
        lines = self.module.lines
        while first > 1:
            above = lines[first - 2].strip()
            if above.startswith("#") or above.startswith("@"):
                first -= 1
            else:
                break
        annotated = any(
            line in self.module.lock_annotations
            for line in range(first, node.body[0].lineno))
        info = FunctionInfo(qualname=qualname, name=node.name,
                            module=self.module, node=node,
                            start=node.lineno,
                            end=node.end_lineno or node.lineno,
                            requires_lock=annotated)
        self.functions.append(info)
        self._frame_stack.append(info)
        self.generic_visit(node)
        self._frame_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------ facts
    def _frame(self) -> FunctionInfo | None:
        return self._frame_stack[-1] if self._frame_stack else None

    def visit_With(self, node: ast.With) -> None:
        frame = self._frame()
        if frame is not None and any(_mentions_lock(item.context_expr)
                                     for item in node.items):
            frame.lock_ranges.append((node.lineno,
                                      node.end_lineno or node.lineno))
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        frame = self._frame()
        name = call_name(node)
        if frame is not None and name is not None:
            frame.calls.append(CallSite(
                name=name, node=node, lineno=node.lineno,
                in_lock=frame.in_lock_range(node.lineno)))
        self.generic_visit(node)


class Project:
    """Every loaded module plus derived symbol/call-graph indexes."""

    def __init__(self, root: Path, modules: list[SourceModule],
                 errors: list[tuple[str, int, str]]) -> None:
        self.root = root
        self.modules = modules
        self.errors = errors  # (relpath, lineno, message) parse failures
        self.functions: dict[str, FunctionInfo] = {}
        self._functions_by_name: dict[str, list[FunctionInfo]] = {}
        self._callers_by_name: dict[str, list[tuple[FunctionInfo, CallSite]]] = {}
        for module in modules:
            collector = _FunctionCollector(module)
            collector.visit(module.tree)
            for info in collector.functions:
                self.functions[info.qualname] = info
                self._functions_by_name.setdefault(info.name, []).append(info)
                for site in info.calls:
                    self._callers_by_name.setdefault(site.name, []).append(
                        (info, site))

    # ------------------------------------------------------------------ query
    def iter_modules(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    def find_module(self, suffix: str) -> SourceModule | None:
        """The module whose relpath ends with *suffix* (posix), if any."""
        for module in self.modules:
            if module.relpath.endswith(suffix):
                return module
        return None

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return self._functions_by_name.get(name, [])

    def callers_of(self, name: str) -> list[tuple[FunctionInfo, CallSite]]:
        """Every (caller frame, call site) pair dispatching on *name*."""
        return self._callers_by_name.get(name, [])

    def enclosing_function(self, module: SourceModule,
                           lineno: int) -> FunctionInfo | None:
        """The innermost function frame of *module* containing *lineno*."""
        best: FunctionInfo | None = None
        for info in self.functions.values():
            if info.module is not module or not info.start <= lineno <= info.end:
                continue
            if best is None or info.start > best.start:
                best = info
        return best

    # -------------------------------------------------- assignment extraction
    def assigned_strings(self, module: SourceModule, name: str) -> set[str]:
        """String constants in the module-level assignment of *name*.

        Resolves one level of name references so unions such as
        ``FIELDS = FIELDS_V1 | frozenset({"extra"})`` include the referenced
        set's members too.
        """
        values: dict[str, ast.expr] = {}
        for node in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    values[target.id] = node.value  # type: ignore[union-attr]
        expr = values.get(name)
        if expr is None:
            return set()
        result = literal_strings(expr)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id in values:
                result |= literal_strings(values[sub.id])
        return result


def load_project(root: Path,
                 paths: Iterable[Path] | None = None) -> Project:
    """Load every module under *root* (or the explicit *paths*) into a Project."""
    root = root.resolve()
    modules: list[SourceModule] = []
    errors: list[tuple[str, int, str]] = []
    for path in (paths if paths is not None else iter_source_files(root)):
        try:
            modules.append(load_module(path, root))
        except SyntaxError as exc:
            rel = path.resolve().relative_to(root).as_posix()
            errors.append((rel, exc.lineno or 1, f"syntax error: {exc.msg}"))
    return Project(root, modules, errors)
