"""reprolint — repo-specific static analysis for the tuning stack (PR 9).

Usage: ``PYTHONPATH=src python -m repro.analysis`` lints ``src/repro`` with
every rule and exits 0 when all findings are either fixed, suppressed inline
(``# reprolint: disable=<rule>`` on the offending line) or grandfathered in
``analysis/baseline.json`` (one justified entry per finding; refresh with
``--update-baseline`` after deliberate changes, then replace the TODO
justifications in review).  ``--rule <name>`` (repeatable) narrows the run,
``--list-rules`` shows the catalogue, ``--root`` points the engine at any
other tree (the fixture tests use this).  The engine parses source with
:mod:`ast` and never imports the code under analysis, so it has no runtime
dependencies; a full run over the repo takes well under ten seconds.  The
rules encode the conventions PRs 1-8 established — fingerprint purity,
fault-site discipline, context-lock discipline, bounded metric labels, wire
codec completeness, worker pickle safety, no runtime asserts, no dead
imports — see the ROADMAP's "Static analysis (PR 9)" notes for each rule's
origin and the suppression workflow.
"""

from repro.analysis.baseline import Baseline, split_by_baseline
from repro.analysis.engine import analyze_project, run_analysis
from repro.analysis.project import Project, load_project
from repro.analysis.rules import ALL_RULES, Finding, Rule, rule_by_name

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "analyze_project",
    "load_project",
    "rule_by_name",
    "run_analysis",
    "split_by_baseline",
]
