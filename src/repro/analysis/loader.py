"""Source loading for reprolint: parse every project module into an AST.

The loader never imports the code it analyses — modules are read as text and
parsed with :mod:`ast`, so the analysis runs without numpy/scipy installed and
cannot be perturbed by import-time side effects.  Because the ``ast`` module
drops comments, ``# reprolint:`` pragmas are recovered with a line scan over
the raw source:

``# reprolint: disable=<rule>[,<rule>...]``
    Suppress findings of the named rules on that source line (a bare
    ``disable`` suppresses every rule on the line).

``# reprolint: requires-lock``
    Placed on (or immediately above) a ``def`` line: declares that the
    function's contract requires callers to hold the context lock, which
    terminates the lock-discipline rule's caller walk at that frame.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["SourceModule", "iter_source_files", "load_module", "PragmaError"]

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>[A-Za-z0-9_,=\- ]+)")

#: Sentinel rule name meaning "suppress every rule on this line".
SUPPRESS_ALL = "*"


class PragmaError(ValueError):
    """Raised for a ``# reprolint:`` comment the loader cannot parse."""


@dataclass
class SourceModule:
    """One parsed project module plus its pragma side tables."""

    path: Path
    relpath: str            # posix path relative to the scan root
    modname: str            # dotted module name, e.g. "repro.api.tuner"
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line number -> set of suppressed rule names (SUPPRESS_ALL for all)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: line numbers carrying a ``requires-lock`` annotation
    lock_annotations: set[int] = field(default_factory=set)

    def suppressed(self, rule: str, line: int) -> bool:
        names = self.suppressions.get(line)
        if not names:
            return False
        return rule in names or SUPPRESS_ALL in names


def iter_source_files(root: Path) -> Iterator[Path]:
    """Yield every ``.py`` file under *root*, skipping caches and hidden dirs."""
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(part == "__pycache__" or part.startswith(".") for part in parts):
            continue
        yield path


def _iter_comments(module: SourceModule) -> Iterator[tuple[int, str]]:
    # tokenize (not a line regex) so pragma syntax quoted in docstrings and
    # string literals is not mistaken for a live pragma.
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:
        return


def _parse_pragmas(module: SourceModule) -> None:
    for lineno, comment in _iter_comments(module):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        body = match.group("body").strip()
        if body == "requires-lock":
            module.lock_annotations.add(lineno)
        elif body == "disable":
            module.suppressions.setdefault(lineno, set()).add(SUPPRESS_ALL)
        elif body.startswith("disable="):
            names = {name.strip() for name in body[len("disable="):].split(",")}
            names.discard("")
            if not names:
                raise PragmaError(
                    f"{module.relpath}:{lineno}: empty reprolint disable list")
            module.suppressions.setdefault(lineno, set()).update(names)
        else:
            raise PragmaError(
                f"{module.relpath}:{lineno}: unknown reprolint pragma {body!r}")


def load_module(path: Path, root: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (raises ``SyntaxError``)."""
    text = path.read_text(encoding="utf-8")
    relpath = path.relative_to(root).as_posix()
    modname = relpath[:-len(".py")].replace("/", ".")
    if modname.endswith(".__init__"):
        modname = modname[:-len(".__init__")]
    tree = ast.parse(text, filename=str(path))
    module = SourceModule(path=path, relpath=relpath, modname=modname,
                          text=text, tree=tree, lines=text.splitlines())
    _parse_pragmas(module)
    return module
