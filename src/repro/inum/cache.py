"""The INUM cache: template-plan construction and fast configuration costing."""

from __future__ import annotations

import itertools
import math
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.catalog.schema import Schema
from repro.exceptions import OptimizerError
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.gamma_matrix import QueryGammaMatrix, slot_gamma
from repro.inum.template_plan import INFEASIBLE_COST, TemplatePlan
from repro.inum.workload_tensor import WorkloadGammaTensor
from repro.obs.metrics import active_registry
from repro.obs.profile import InstrumentedLock
from repro.optimizer.plan import ScanNode

from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.predicates import ColumnRef
from repro.workload.query import Query, UpdateQuery
from repro.workload.workload import Workload

__all__ = ["InumCache", "DEFAULT_MAX_ORDERS_PER_TABLE",
           "DEFAULT_MAX_TEMPLATES_PER_QUERY"]

#: Cap on cached workload tensors (distinct workload objects per session).
_TENSOR_CACHE_LIMIT = 8

#: Constructor defaults, shared with code that rebuilds caches in worker
#: processes so both sides always enumerate the same templates.
DEFAULT_MAX_ORDERS_PER_TABLE = 2
DEFAULT_MAX_TEMPLATES_PER_QUERY = 64


def _cache_event(cache: str, event: str) -> None:
    """Record one hit/miss of a cache into the active metrics registry."""
    active_registry().counter(
        "repro_cache_events_total",
        "Hits and misses of the tuning-stack caches",
        ("cache", "event")).inc(cache=cache, event=event)


class InumCache:
    """Per-query template-plan cache implementing fast what-if optimization.

    The cache is built once per query with a small number of optimizer
    invocations — one per enumerated combination of interesting orders — and
    afterwards answers ``cost(q, X)`` for arbitrary configurations without
    touching the optimizer, by minimising ``beta_qk + sum_i gamma_qkia`` over
    the templates ``k`` and the per-slot access-method choices.

    Args:
        optimizer: The underlying what-if optimizer (used only at build time
            and for update-maintenance costs).
        max_orders_per_table: Cap on interesting orders considered per slot.
        max_templates_per_query: Cap on the number of template plans kept per
            query.  When the full cross product of interesting orders exceeds
            the cap, a representative subset is enumerated instead (the
            all-unordered template, all single-order templates and the
            all-ordered template).
        use_gamma_matrix: Answer ``cost(q, X)`` through a dense per-query
            :class:`QueryGammaMatrix` (vectorized reductions) instead of
            Python-level loops over the optimizer's scan cache.  The two
            paths return bit-identical costs; the loop path is kept for the
            speedup microbenchmark and as a debugging reference.
        build_workers: Thread count for parallel gamma-matrix construction
            during :meth:`prepare` / :meth:`build_workload` (matrices are
            independent per query).  ``None`` uses ``os.cpu_count()``;
            ``1`` forces serial builds.
        build_processes: Process count for sharded gamma-matrix construction.
            Template enumeration and column costing are GIL-bound Python, so
            threads cannot scale them on multi-core machines; with
            ``build_processes > 1`` pending matrices are built in worker
            processes (``repro.scale.executor``) and adopted back into this
            cache in workload order.  ``None`` / ``1`` keeps the in-process
            (thread) path.
    """

    def __init__(self, optimizer: WhatIfOptimizer,
                 max_orders_per_table: int = DEFAULT_MAX_ORDERS_PER_TABLE,
                 max_templates_per_query: int = DEFAULT_MAX_TEMPLATES_PER_QUERY,
                 use_gamma_matrix: bool = True,
                 build_workers: int | None = None,
                 build_processes: int | None = None):
        if max_orders_per_table < 0:
            raise ValueError("max_orders_per_table must be non-negative")
        if max_templates_per_query < 1:
            raise ValueError("max_templates_per_query must be at least 1")
        if build_workers is not None and build_workers < 1:
            raise ValueError("build_workers must be at least 1")
        if build_processes is not None and build_processes < 1:
            raise ValueError("build_processes must be at least 1")
        self._optimizer = optimizer
        self._schema: Schema = optimizer.schema
        self._max_orders = max_orders_per_table
        self._max_templates = max_templates_per_query
        self._use_matrix = use_gamma_matrix
        self._build_workers = build_workers
        self._build_processes = build_processes
        self._templates: dict[str, tuple[TemplatePlan, ...]] = {}
        self._queries: dict[str, Query] = {}
        self._matrices: dict[str, QueryGammaMatrix] = {}
        # Workload tensors keyed by workload object identity; the stored
        # workload reference keeps the id alive, so it cannot be reused.
        self._tensors: dict[int, tuple[Workload, WorkloadGammaTensor]] = {}
        # Flat per-update ``index -> ucost`` maps: the batched costing loop
        # reads maintenance terms with plain dict gets instead of paying a
        # method call per (update, index) probe.
        self._ucost_maps: dict[str, dict[Index, float]] = {}
        self._build_calls = 0
        # Instrumented: contended build-counter updates during parallel
        # template builds surface in repro_lock_wait_seconds{lock}.
        self._metrics_lock = InstrumentedLock("inum_metrics",
                                              lock=threading.Lock())

    # ------------------------------------------------------------------ metrics
    @property
    def template_build_calls(self) -> int:
        """Number of optimizer invocations spent building template plans."""
        return self._build_calls

    @property
    def schema(self) -> Schema:
        """The catalog this cache costs queries against."""
        return self._schema

    @property
    def optimizer(self) -> WhatIfOptimizer:
        """The shared what-if optimizer (used at build time)."""
        return self._optimizer

    @property
    def enumeration_caps(self) -> tuple[int, int]:
        """``(max_orders_per_table, max_templates_per_query)`` — the knobs a
        worker process must copy to reproduce this cache's templates."""
        return self._max_orders, self._max_templates

    @property
    def uses_gamma_matrix(self) -> bool:
        """Whether costing runs on the vectorized gamma-matrix path."""
        return self._use_matrix

    @property
    def cached_query_count(self) -> int:
        return len(self._templates)

    def total_template_count(self) -> int:
        return sum(len(templates) for templates in self._templates.values())

    # ----------------------------------------------------------------- building
    # reprolint: requires-lock (see build: callers serialize)
    def build_workload(self, workload: Workload,
                       build_workers: int | None = None,
                       build_processes: int | None = None) -> None:
        """Pre-process every statement of a workload (in parallel when asked)."""
        self._build_statements(workload, (), build_workers, build_processes)

    # reprolint: requires-lock (the cache does not serialize itself; owners
    # hold SchemaContext.lock, worker processes use a process-local cache)
    def build(self, query: Query) -> tuple[TemplatePlan, ...]:
        """Build (or return cached) ``TPlans(q)`` for a statement."""
        shell = self._shell(query)
        cached = self._templates.get(shell.name)
        if cached is not None:
            _cache_event("template", "hit")
            return cached
        _cache_event("template", "miss")
        templates = self._enumerate_templates(shell)
        self._templates[shell.name] = templates
        self._queries[shell.name] = shell
        return templates

    def templates(self, query: Query) -> tuple[TemplatePlan, ...]:
        """``TPlans(q)``, building them on first use."""
        return self.build(query)

    # reprolint: requires-lock (see build: callers serialize)
    def gamma_matrix(self, query: Query) -> QueryGammaMatrix:
        """The dense gamma matrix of a statement, building it on first use."""
        shell = self._shell(query)
        matrix = self._matrices.get(shell.name)
        if matrix is None:
            templates = self.build(shell)
            matrix = QueryGammaMatrix(self._queries[shell.name], templates,
                                      self._optimizer)
            self._matrices[shell.name] = matrix
        return matrix

    # reprolint: requires-lock (see build: callers serialize)
    def prepare(self, workload: Workload,
                candidates: Iterable[Index] = (),
                build_workers: int | None = None,
                build_processes: int | None = None) -> None:
        """Pre-process a workload and register candidate columns up front.

        After this, ``cost`` / ``workload_cost`` / BIP coefficient assembly
        for the given candidate universe run entirely on precomputed arrays
        without touching the optimizer.  Gamma matrices are built in parallel
        (``build_workers`` threads — matrices are independent per query — or
        ``build_processes`` worker processes for GIL-free sharded builds).

        ``prepare`` is idempotent and incremental: calling it again with an
        enlarged candidate set extends the existing matrices and the workload
        tensor with the new columns only — templates are never re-enumerated
        and nothing is rebuilt from scratch.
        """
        indexes = tuple(candidates)
        self._build_statements(workload, indexes, build_workers, build_processes)
        if self._use_matrix:
            self.workload_tensor(workload).ensure_columns(indexes)

    def _build_statements(self, workload: Workload, indexes: tuple[Index, ...],
                          build_workers: int | None,
                          build_processes: int | None = None) -> None:
        """Build templates/matrices for a workload, one task per distinct shell.

        Workers compute into per-task locals (the only shared mutable state
        they touch are the optimizer's memo dicts, which are benign to race
        on: both sides would store the same value); results are committed to
        the cache dicts on the calling thread, in workload order, so the
        cache contents are deterministic regardless of scheduling.
        """
        shells: list[Query] = []
        seen: set[str] = set()
        for statement in workload:
            shell = self._shell(statement.query)
            if shell.name not in seen:
                seen.add(shell.name)
                shells.append(shell)
        # Process-sharded builds (the GIL-free path): pending shells are built
        # in worker processes and adopted back in workload order, after which
        # the serial pass below only performs idempotent column scans.
        processes = (build_processes if build_processes is not None
                     else self._build_processes)
        if processes is not None and processes > 1:
            from repro.scale.executor import build_matrices_in_processes

            build_matrices_in_processes(self, shells, indexes,
                                        workers=processes)
        # Only shells whose templates/matrix must actually be built justify a
        # thread pool; for fully cached workloads the tasks are dict hits
        # plus (at most) idempotent column scans, so they run serially.
        pending = len(self.pending_shells(shells))
        workers = build_workers if build_workers is not None else self._build_workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = min(workers, pending) if pending else 1
        if workers <= 1:
            results = [self._build_one(shell, indexes) for shell in shells]
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                results = list(executor.map(
                    lambda shell: self._build_one(shell, indexes), shells))
        for shell, templates, matrix in results:
            self._templates[shell.name] = templates
            self._queries[shell.name] = shell
            if matrix is not None:
                self._matrices[shell.name] = matrix

    def pending_shells(self, shells: Iterable[Query]) -> tuple[Query, ...]:
        """The shells whose templates/matrix this cache has not built yet.

        The single definition of "needs building" — the parallel build paths
        (threads above, the process executor in ``repro.scale``) use it to
        decide what to dispatch.
        """
        return tuple(
            shell for shell in shells
            if shell.name not in self._templates
            or (self._use_matrix and shell.name not in self._matrices))

    def build_entry(self, shell: Query, indexes: tuple[Index, ...] = ()
                    ) -> tuple[Query, tuple[TemplatePlan, ...],
                               QueryGammaMatrix | None]:
        """Build one shell's templates/matrix *without* committing them.

        Worker processes call this to compute entries that the originating
        cache later installs via :meth:`adopt_built`.
        """
        return self._build_one(shell, tuple(indexes))

    def _build_one(self, shell: Query, indexes: tuple[Index, ...]
                   ) -> tuple[Query, tuple[TemplatePlan, ...],
                              QueryGammaMatrix | None]:
        """Build (or extend) one shell's templates and gamma matrix."""
        templates = self._templates.get(shell.name)
        if templates is None:
            templates = self._enumerate_templates(shell)
        matrix = self._matrices.get(shell.name)
        if self._use_matrix and matrix is None:
            matrix = QueryGammaMatrix(shell, templates, self._optimizer)
        if matrix is not None and indexes:
            matrix.ensure_columns(indexes)
        return shell, templates, matrix

    # reprolint: requires-lock (see build: callers serialize)
    def adopt_built(self, entries: Iterable[tuple[Query, tuple[TemplatePlan, ...],
                                                  QueryGammaMatrix | None]],
                    build_calls: int = 0) -> None:
        """Install externally built templates/matrices (process-sharded builds).

        Entries for shells this cache already knows are ignored (the local
        build wins); adopted matrices are rebound to this cache's optimizer.
        ``build_calls`` adds the worker-side template-build count to the
        :attr:`template_build_calls` metric so optimizer-call accounting stays
        comparable across build modes.
        """
        for shell, templates, matrix in entries:
            if shell.name not in self._templates:
                self._templates[shell.name] = templates
                self._queries[shell.name] = shell
            if (self._use_matrix and matrix is not None
                    and shell.name not in self._matrices):
                matrix.rebind_optimizer(self._optimizer)
                self._matrices[shell.name] = matrix
        if build_calls:
            with self._metrics_lock:
                self._build_calls += build_calls

    # reprolint: requires-lock (see build: callers serialize)
    def workload_tensor(self, workload: Workload) -> WorkloadGammaTensor:
        """The stacked gamma tensor of a workload, building it on first use.

        Tensors are cached per workload object; candidate columns registered
        later (by ``prepare``, BIP assembly or costing itself) extend the
        cached tensor in place rather than rebuilding it.
        """
        if not self._use_matrix:
            raise OptimizerError(
                "workload tensors require use_gamma_matrix=True")
        key = id(workload)
        entry = self._tensors.get(key)
        if entry is not None and entry[0] is workload:
            # Promote on hit (the eviction below pops the least recent).
            self._tensors[key] = self._tensors.pop(key)
            _cache_event("tensor", "hit")
            return entry[1]
        _cache_event("tensor", "miss")
        self._build_statements(workload, (), None)
        entries = []
        for statement in workload:
            shell = self._shell(statement.query)
            entries.append((self._queries[shell.name],
                            self._matrices[shell.name]))
        tensor = WorkloadGammaTensor(entries)
        if len(self._tensors) >= _TENSOR_CACHE_LIMIT:
            self._tensors.pop(next(iter(self._tensors)))
        self._tensors[id(workload)] = (workload, tensor)
        return tensor

    # ------------------------------------------------------------------ costing
    def access_cost(self, query: Query, table: str, index: Index | None) -> float:
        """The order-independent access cost of ``table`` via ``index`` (``gamma``)."""
        shell = self._shell(query)
        return self._optimizer.access_scan(shell, table, index).cost

    def gamma(self, query: Query, template: TemplatePlan, table: str,
              index: Index | None) -> float:
        """``gamma_qkia``: slot access cost, or infinity when incompatible.

        Reads the dense gamma matrix when enabled, so the value is the exact
        float every other consumer (``cost``, BIP assembly) sees.
        """
        shell = self._shell(query)
        if self._use_matrix:
            matrix = self.gamma_matrix(shell)
            position = matrix.position_of(template)
            if position is not None:
                return matrix.value(position, table, index)
        return slot_gamma(self._optimizer, shell, template, table, index)

    def cost(self, query: Query, configuration: Configuration | Iterable[Index]
             ) -> float:
        """INUM-approximated ``cost(q, X)`` for a SELECT statement / query shell."""
        shell = self._shell(query)
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        if self._use_matrix:
            best = self.gamma_matrix(shell).cost(configuration)
        else:
            best = self._cost_loop(shell, configuration)
        if math.isinf(best):
            raise OptimizerError(
                f"INUM produced no feasible template for query {shell.name!r}")
        return best

    def _cost_loop(self, shell: Query, configuration: Configuration) -> float:
        """The per-call loop path (microbenchmark baseline / debugging aid)."""
        templates = self.build(shell)
        best = INFEASIBLE_COST
        for template in templates:
            total = template.internal_cost
            for table in shell.tables:
                slot_best = self._best_slot_cost(shell, template, table, configuration)
                total += slot_best
                if total >= best:
                    break
            best = min(best, total)
        return best

    def statement_cost(self, query: Query,
                       configuration: Configuration | Iterable[Index]) -> float:
        """Full statement cost (adds update-maintenance terms for UPDATEs)."""
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        if isinstance(query, UpdateQuery):
            shell_cost = self.cost(query.query_shell(), configuration)
            maintenance = sum(
                self._optimizer.update_maintenance_cost(index, query)
                for index in configuration.indexes_on(query.table))
            return shell_cost + maintenance + self._optimizer.base_update_cost(query)
        return self.cost(query, configuration)

    def workload_cost(self, workload: Workload,
                      configuration: Configuration | Iterable[Index]) -> float:
        """Weighted INUM cost of a whole workload under a configuration.

        On the gamma-matrix path this is answered from the workload tensor —
        one stacked reduction (memoized per configuration) instead of a
        Python loop over per-query costings — and is bit-identical to the
        per-statement sum.
        """
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        if self._use_matrix:
            costs = self._tensor_statement_costs(workload, configuration)
            total = 0.0
            for statement, cost in zip(workload, costs):
                total += statement.weight * cost
            return total
        return sum(statement.weight * self.statement_cost(statement.query, configuration)
                   for statement in workload)

    def statement_costs(self, workload: Workload,
                        configuration: Configuration | Iterable[Index]
                        ) -> np.ndarray:
        """Unweighted full statement costs, in workload order (batched).

        One tensor reduction answers every SELECT shell; update-maintenance
        terms are added per statement exactly as :meth:`statement_cost` adds
        them, so ``statement_costs(w, X)[i] == statement_cost(w[i], X)``
        bit for bit.
        """
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        if self._use_matrix:
            return np.array(
                self._tensor_statement_costs(workload, configuration),
                dtype=np.float64)
        return np.array([self.statement_cost(statement.query, configuration)
                         for statement in workload], dtype=np.float64)

    def _tensor_statement_costs(self, workload: Workload,
                                configuration: Configuration) -> list[float]:
        """Full per-statement costs from one (memoized) tensor reduction."""
        tensor = self.workload_tensor(workload)
        shell_costs = tensor.shell_costs(configuration)
        if np.isinf(shell_costs).any():
            position = int(np.isinf(shell_costs).argmax())
            shell = self._shell(workload.statements[position].query)
            raise OptimizerError(
                f"INUM produced no feasible template for query {shell.name!r}")
        costs = shell_costs.tolist()
        for position, statement in enumerate(workload):
            query = statement.query
            if isinstance(query, UpdateQuery):
                costs[position] = (costs[position]
                                   + self._maintenance(query, configuration)
                                   + self._optimizer.base_update_cost(query))
        return costs

    def _maintenance(self, update: UpdateQuery,
                     configuration: Configuration) -> float:
        """``sum_a ucost(a, q)`` over the configuration's indexes on the table.

        Accumulated in ``indexes_on`` order (like :meth:`statement_cost`), so
        the batched path stays bit-identical to the per-statement one.
        """
        ucosts = self._ucost_maps.setdefault(update.name, {})
        total = 0.0
        for index in configuration.indexes_on(update.table):
            cost = ucosts.get(index)
            if cost is None:
                cost = self._optimizer.update_maintenance_cost(index, update)
                ucosts[index] = cost
            total += cost
        return total

    def _best_slot_cost(self, query: Query, template: TemplatePlan, table: str,
                        configuration: Configuration) -> float:
        best = self.gamma(query, template, table, None)
        for index in configuration.indexes_on(table):
            candidate = self.gamma(query, template, table, index)
            if candidate < best:
                best = candidate
        return best

    # ---------------------------------------------------------------- internals
    @staticmethod
    def _shell(query: Query) -> Query:
        if isinstance(query, UpdateQuery):
            return query.query_shell()
        return query

    def _interesting_orders(self, query: Query, table: str) -> tuple[ColumnRef, ...]:
        table_def = self._schema.table(table)
        orders = [column for column in query.interesting_order_columns(table)
                  if table_def.has_column(column.column)]
        return tuple(orders[:self._max_orders])

    def _enumerate_templates(self, query: Query) -> tuple[TemplatePlan, ...]:
        per_table_orders: dict[str, tuple[ColumnRef | None, ...]] = {}
        for table in query.tables:
            options: list[ColumnRef | None] = [None]
            options.extend(self._interesting_orders(query, table))
            per_table_orders[table] = tuple(options)

        specs = self._order_specs(query.tables, per_table_orders)
        templates: list[TemplatePlan] = []
        seen_signatures: set[tuple] = set()
        for spec in specs:
            template = self._build_template(query, spec)
            if template.signature() in seen_signatures:
                continue
            seen_signatures.add(template.signature())
            templates.append(template)
        return tuple(self._prune_dominated(templates))

    @staticmethod
    def _prune_dominated(templates: list[TemplatePlan]) -> list[TemplatePlan]:
        """Drop templates dominated by a cheaper, less-demanding template.

        Template ``A`` dominates ``B`` when ``A`` costs no more internally and
        every slot of ``A`` accepts at least the access methods ``B`` accepts
        (``A``'s requirement is either none or identical).  Dominated
        templates can never win the minimisation, so removing them keeps the
        BIP compact without changing any cost.
        """
        kept: list[TemplatePlan] = []
        for candidate in templates:
            dominated = False
            for other in templates:
                if other is candidate:
                    continue
                if other.internal_cost > candidate.internal_cost + 1e-9:
                    continue
                weaker = all(
                    other.required_order(table) is None
                    or other.required_order(table) == candidate.required_order(table)
                    for table in candidate.tables)
                strictly = (other.internal_cost < candidate.internal_cost - 1e-9
                            or other.signature() != candidate.signature())
                if weaker and strictly:
                    dominated = True
                    break
            if not dominated:
                kept.append(candidate)
        return kept or templates

    def _order_specs(self, tables: Sequence[str],
                     per_table_orders: Mapping[str, Sequence[ColumnRef | None]]
                     ) -> list[dict[str, ColumnRef | None]]:
        """Enumerate interesting-order combinations, bounded by the template cap."""
        option_lists = [per_table_orders[table] for table in tables]
        product_size = 1
        for options in option_lists:
            product_size *= len(options)
        specs: list[dict[str, ColumnRef | None]] = []
        if product_size <= self._max_templates:
            for combination in itertools.product(*option_lists):
                specs.append(dict(zip(tables, combination)))
            return specs
        # Representative subset: no orders, one order at a time, all first orders.
        base: dict[str, ColumnRef | None] = {table: None for table in tables}
        specs.append(dict(base))
        for table in tables:
            for order in per_table_orders[table]:
                if order is None:
                    continue
                spec = dict(base)
                spec[table] = order
                specs.append(spec)
                if len(specs) >= self._max_templates - 1:
                    break
            if len(specs) >= self._max_templates - 1:
                break
        all_first = {
            table: next((o for o in per_table_orders[table] if o is not None), None)
            for table in tables}
        specs.append(all_first)
        return specs

    def _build_template(self, query: Query,
                        order_spec: Mapping[str, ColumnRef | None]) -> TemplatePlan:
        """Build one template plan by optimizing with synthetic ordered leaves."""
        with self._metrics_lock:  # parallel builds share the counter
            self._build_calls += 1
        scans: dict[str, ScanNode] = {}
        widths: dict[str, float] = {}
        for table in query.tables:
            base = self._optimizer.access_scan(query, table, None)
            required = order_spec.get(table)
            scans[table] = ScanNode(
                cost=base.cost,
                rows=base.rows,
                output_order=required,
                table=table,
                index=None,
                access_path=base.access_path,
            )
            widths[table] = self._optimizer.access_selector.output_width(query, table)
        plan = self._optimizer.plan_builder.build(query, scans, widths)
        internal_cost = plan.internal_cost
        return TemplatePlan(
            query_name=query.name,
            order_requirements=dict(order_spec),
            internal_cost=internal_cost,
            representative_plan=plan,
        )
