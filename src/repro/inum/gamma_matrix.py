"""Dense per-query cost matrices for vectorized INUM costing.

The INUM cost formula ``cost(q, X) = min_k (beta_qk + sum_i min_a
gamma_qkia)`` is a pure reduction over per-slot access costs, yet the original
implementation re-derived every ``gamma_qkia`` through Python-level calls into
the what-if optimizer's scan cache on *every* ``cost(q, X)`` invocation.  This
module materializes the costs once per query as a dense numpy array

    ``matrix[k, i, a]  ==  gamma_qkia``

of shape ``(templates, slots, 1 + registered indexes)`` — column ``0`` is the
heap access ``I_0``, further columns are candidate indexes registered lazily —
so that costing a configuration becomes a handful of ``min`` reductions over
array slices.  Infeasible (template, slot, access) combinations hold
``INFEASIBLE_COST`` (``inf``), which flows through the reductions exactly like
the scalar comparisons of the loop-based path: the two paths return
bit-identical costs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.template_plan import INFEASIBLE_COST, TemplatePlan
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import Query

__all__ = ["QueryGammaMatrix", "slot_gamma"]

#: Cap on cached per-slot min-vectors before the cache is reset wholesale.
_SLOT_MIN_CACHE_LIMIT = 4096


def slot_gamma(optimizer: WhatIfOptimizer, query: Query, template: TemplatePlan,
               table: str, index: Index | None) -> float:
    """Scalar ``gamma_qkia`` — the single definition of slot-access cost.

    Both the dense matrix and the loop-based costing path call this, so the
    two stay bit-identical by construction.
    """
    if table not in template.order_requirements:
        return 0.0
    scan = optimizer.access_scan(query, table, index)
    if not template.accepts(table, scan):
        return INFEASIBLE_COST
    return scan.cost


class QueryGammaMatrix:
    """The dense ``(templates x slots x accesses)`` gamma array of one query.

    Args:
        query: The query shell the matrix belongs to (never an UPDATE).
        templates: ``TPlans(q)`` as enumerated by the INUM cache.
        optimizer: The shared what-if optimizer used to cost slot accesses
            when a new column is registered.
    """

    def __init__(self, query: Query, templates: Sequence[TemplatePlan],
                 optimizer: WhatIfOptimizer):
        self._query = query
        self._templates = tuple(templates)
        self._optimizer = optimizer
        self._tables = tuple(query.tables)
        self._slot_of = {table: slot for slot, table in enumerate(self._tables)}
        self._position_of = {template: position
                             for position, template in enumerate(self._templates)}
        self._column_of: dict[Index, int] = {}
        # Memoized ``min`` reductions per (slot, index subset); atomic
        # configurations and knapsack-style loops re-cost the same per-table
        # subsets constantly.  Entries stay valid when new columns register
        # because a slot minimum only depends on its own subset's columns.
        # Two levels: by the subset tuple's identity (no hashing at all —
        # safe because the value keeps the tuple alive, so its id cannot be
        # reused) and by tuple equality (hits for equal subsets coming from
        # freshly built configurations).
        self._slot_min_by_id: dict[tuple[int, int],
                                   tuple[tuple[Index, ...], np.ndarray]] = {}
        self._slot_min_by_key: dict[tuple[int, tuple[Index, ...]],
                                    np.ndarray] = {}
        self._beta = np.array([t.internal_cost for t in self._templates],
                              dtype=np.float64)
        self._matrix = np.empty((len(self._templates), len(self._tables), 1),
                                dtype=np.float64)
        for slot, table in enumerate(self._tables):
            self._matrix[:, slot, 0] = [self._gamma_scalar(t, table, None)
                                        for t in self._templates]

    # ----------------------------------------------------------------- metadata
    @property
    def templates(self) -> tuple[TemplatePlan, ...]:
        return self._templates

    @property
    def tables(self) -> tuple[str, ...]:
        """The query's tables, in slot order."""
        return self._tables

    @property
    def beta(self) -> np.ndarray:
        """``beta_qk`` per template (read-only view)."""
        return self._beta

    @property
    def array(self) -> np.ndarray:
        """The dense ``(templates, slots, accesses)`` gamma array.

        Consumers (the workload tensor, BIP assembly) must treat it as
        read-only; columns are only ever appended, never mutated.
        """
        return self._matrix

    def column_of(self, index: Index) -> int | None:
        """Column of a registered index (``None`` when not registered)."""
        return self._column_of.get(index)

    @property
    def registered_indexes(self) -> tuple[Index, ...]:
        return tuple(self._column_of)

    @property
    def column_count(self) -> int:
        """Number of access-method columns (heap column included)."""
        return self._matrix.shape[2]

    def position_of(self, template: TemplatePlan) -> int | None:
        return self._position_of.get(template)

    # ----------------------------------------------------------------- building
    def ensure_columns(self, indexes: Iterable[Index]) -> None:
        """Register access-method columns for any not-yet-seen indexes.

        Indexes on tables this query never touches get no column — their
        gamma is infinite for every slot and the reductions never select
        them — so each matrix scales with the query-relevant candidates
        only, not the global candidate universe.
        """
        new = [index for index in dict.fromkeys(indexes)
               if index is not None and index not in self._column_of
               and index.table in self._slot_of]
        if not new:
            return
        base = self._matrix.shape[2]
        block = np.empty((len(self._templates), len(self._tables), len(new)),
                         dtype=np.float64)
        block.fill(INFEASIBLE_COST)
        for offset, index in enumerate(new):
            self._column_of[index] = base + offset
            slot = self._slot_of[index.table]
            block[:, slot, offset] = [
                self._gamma_scalar(t, index.table, index) for t in self._templates]
        self._matrix = np.concatenate([self._matrix, block], axis=2)

    def rebind_optimizer(self, optimizer: WhatIfOptimizer) -> None:
        """Attach a schema-equivalent optimizer after a pickle round trip.

        Matrices built in worker processes arrive with their own optimizer
        copy; rebinding them to the adopting cache's optimizer keeps one
        shared scan cache per process.  The slot-min memos are dropped — they
        are keyed by object identities of the sending process.
        """
        self._optimizer = optimizer
        self._slot_min_by_id.clear()
        self._slot_min_by_key.clear()

    # ------------------------------------------------------------------ reading
    def value(self, position: int, table: str, index: Index | None) -> float:
        """``gamma_qkia`` for template ``position`` / slot ``table`` / ``index``."""
        slot = self._slot_of.get(table)
        if slot is None:
            return self._gamma_scalar(self._templates[position], table, index)
        if index is None:
            return float(self._matrix[position, slot, 0])
        column = self._column_of.get(index)
        if column is None:
            if index.table not in self._slot_of:
                return self._gamma_scalar(self._templates[position], table, index)
            self.ensure_columns((index,))
            column = self._column_of[index]
        return float(self._matrix[position, slot, column])

    def slot_costs(self, position: int, table: str,
                   accesses: Sequence[Index | None],
                   registered: bool = False) -> list[float]:
        """The gamma row of one slot, aligned with ``accesses`` (``None`` = heap).

        Pass ``registered=True`` when the caller has already registered the
        accesses via :meth:`ensure_columns` — skipping the idempotent re-scan
        matters when this is called once per template position.
        """
        if not registered:
            self.ensure_columns(accesses)
        slot = self._slot_of.get(table)
        if slot is None:
            template = self._templates[position]
            return [self._gamma_scalar(template, table, access)
                    for access in accesses]
        columns = [0 if access is None else self._column_of[access]
                   for access in accesses]
        return self._matrix[position, slot, columns].tolist()

    def cost(self, configuration: Configuration) -> float:
        """``min_k (beta_qk + sum_i min_a gamma_qkia)`` over ``{I_0} ∪ X``.

        Slot minima are accumulated in the same table order as the loop-based
        path, so the result is bit-identical to it.
        """
        if not self._templates:
            return INFEASIBLE_COST
        totals = self._beta.copy()
        for slot, table in enumerate(self._tables):
            indexes = configuration.indexes_on(table)
            if not indexes:
                totals += self._matrix[:, slot, 0]
                continue
            id_key = (slot, id(indexes))
            cached = self._slot_min_by_id.get(id_key)
            if cached is not None:
                totals += cached[1]
                continue
            eq_key = (slot, indexes)
            mins = self._slot_min_by_key.get(eq_key)
            if mins is None:
                self.ensure_columns(indexes)
                columns = [0]
                columns.extend(self._column_of[index] for index in indexes)
                mins = self._matrix[:, slot, columns].min(axis=1)
                if len(self._slot_min_by_key) >= _SLOT_MIN_CACHE_LIMIT:
                    self._slot_min_by_key.clear()
                    self._slot_min_by_id.clear()
                self._slot_min_by_key[eq_key] = mins
            if len(self._slot_min_by_id) >= _SLOT_MIN_CACHE_LIMIT:
                self._slot_min_by_id.clear()
            self._slot_min_by_id[id_key] = (indexes, mins)
            totals += mins
        return float(totals.min())

    # ---------------------------------------------------------------- internals
    def _gamma_scalar(self, template: TemplatePlan, table: str,
                      index: Index | None) -> float:
        return slot_gamma(self._optimizer, self._query, template, table, index)
