"""INUM: fast what-if optimization through cached template plans.

INUM (Papadomanolakis, Dash, Ailamaki — VLDB 2007) pre-processes each query
with a handful of optimizer calls and caches a set of *template plans*; the
cost of the query under any index configuration is then the minimum over
templates of ``beta + sum_i gamma_i`` — the linear-composability property
(Definition 1 of the CoPhy paper) that the whole BIP formulation rests on.
"""

from repro.inum.template_plan import TemplatePlan
from repro.inum.cache import InumCache
from repro.inum.gamma_matrix import QueryGammaMatrix
from repro.inum.workload_tensor import WorkloadGammaTensor

__all__ = ["TemplatePlan", "InumCache", "QueryGammaMatrix",
           "WorkloadGammaTensor"]
