"""The workload-level gamma tensor: batched INUM costing across queries.

PR 1 vectorized *per-query* costing (:class:`~repro.inum.gamma_matrix.
QueryGammaMatrix`), which left ``workload_cost`` as a Python loop over the
statements — the dominant cost of configuration-enumeration loops (knapsack
greedies, relaxation searches, benchmark evaluations) that re-cost whole
workloads thousands of times per tuning session.  This module stacks every
query's gamma matrix into ONE padded float64 tensor

    ``tensor[q, k, i, a]  ==  gamma_{q,k,i,a}``

of shape ``(queries, max templates, max slots, 1 + candidates)`` so that
costing a configuration for the whole workload is a handful of numpy
reductions instead of a per-query Python loop.

Layout and padding rules (chosen so padding is inert under the reductions):

* Column ``0`` is the heap access ``I_0``; column ``j >= 1`` belongs to the
  ``j``-th candidate of a *shared* candidate → column mapping.  A candidate
  that is irrelevant to a query (not registered in its matrix, or on a table
  the query never touches) holds ``inf`` in that query's rows, so the
  per-slot ``min`` never selects it — this is the per-query mask.
* Template rows beyond a query's own template count hold ``inf`` everywhere
  and ``beta = inf``, so the final ``min`` over templates ignores them.
* Slot rows beyond a query's own table count hold ``0.0`` in the heap column
  and ``inf`` elsewhere, so they contribute exactly ``+0.0`` to the slot sum.

Bit-identity with :meth:`QueryGammaMatrix.cost` is preserved by construction:
the tensor stores the very same floats, the per-slot ``min`` runs over the
same value set (plus ``inf`` entries, which cannot win), and the slot minima
are accumulated onto ``beta`` in each query's own slot order — the same
addition sequence the per-query path performs.

Per-configuration results are memoized with the same two-level scheme the
per-query matrices use for slot minima (identity first, equality fallback),
keyed ONCE for the whole workload instead of once per (query, slot).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.gamma_matrix import QueryGammaMatrix
from repro.inum.template_plan import INFEASIBLE_COST
from repro.workload.query import Query

__all__ = ["WorkloadGammaTensor"]

#: Cap on memoized per-configuration cost vectors before a wholesale reset.
_COST_MEMO_LIMIT = 4096


class WorkloadGammaTensor:
    """Stacked gamma matrices of a workload's query shells.

    Args:
        entries: ``(query shell, gamma matrix)`` pairs in workload statement
            order.  The same shell may appear more than once (workloads may
            repeat statements); each occurrence gets its own row so cost
            vectors stay position-aligned with the workload.
    """

    def __init__(self, entries: Sequence[tuple[Query, QueryGammaMatrix]]):
        self._entries = tuple(entries)
        query_count = len(self._entries)
        self._template_counts = np.array(
            [len(matrix.templates) for _, matrix in self._entries], dtype=np.intp
        ) if query_count else np.zeros(0, dtype=np.intp)
        self._slot_counts = np.array(
            [len(shell.tables) for shell, _ in self._entries], dtype=np.intp
        ) if query_count else np.zeros(0, dtype=np.intp)
        max_templates = int(self._template_counts.max()) if query_count else 0
        max_slots = int(self._slot_counts.max()) if query_count else 0

        # Shared candidate -> column mapping (column 0 = heap), seeded from
        # whatever the matrices have registered so far, in workload order.
        self._column_of: dict[Index, int] = {}
        for _, matrix in self._entries:
            for index in matrix.registered_indexes:
                if index not in self._column_of:
                    self._column_of[index] = 1 + len(self._column_of)
        self._position_of: dict[str, int] = {}
        for position, (shell, _) in enumerate(self._entries):
            self._position_of.setdefault(shell.name, position)

        self._beta = np.full((query_count, max_templates), INFEASIBLE_COST,
                             dtype=np.float64)
        self._tensor = np.full(
            (query_count, max_templates, max_slots, 1 + len(self._column_of)),
            INFEASIBLE_COST, dtype=np.float64)

        # Per-table slot registry: which (query row, slot) pairs hold which
        # table.  Configuration costing gathers per table — one numpy call per
        # referenced table instead of one per (query, slot).
        slots_by_table: dict[str, tuple[list[int], list[int]]] = {}
        for position, (shell, matrix) in enumerate(self._entries):
            templates = len(matrix.templates)
            slots = len(shell.tables)
            if templates:
                self._beta[position, :templates] = matrix.beta
                self._fill_query_rows(position, shell, matrix)
            # Padded slots: +0.0 through the heap column for every template
            # row (real and padded alike).
            self._tensor[position, :, slots:, 0] = 0.0
            for slot, table in enumerate(shell.tables):
                rows, slot_rows = slots_by_table.setdefault(table, ([], []))
                rows.append(position)
                slot_rows.append(slot)
        self._slots_by_table: dict[str, tuple[np.ndarray, np.ndarray]] = {
            table: (np.array(rows, dtype=np.intp),
                    np.array(slot_rows, dtype=np.intp))
            for table, (rows, slot_rows) in slots_by_table.items()}

        # Two-level per-configuration memo: by object identity (no hashing;
        # the stored configuration keeps the id alive) and by set equality
        # (hits for equal configurations built freshly by enumeration loops).
        self._cost_memo_by_id: dict[int, tuple[Configuration, np.ndarray]] = {}
        self._cost_memo_by_key: dict[Configuration, np.ndarray] = {}

    def _fill_query_rows(self, position: int, shell: Query,
                         matrix: QueryGammaMatrix) -> None:
        """Copy one matrix's heap and candidate columns into the stack.

        Every shared-mapping candidate on the query's own tables is
        registered in the matrix first: candidates seen by *other* matrices
        may not be registered in this one yet, and skipping them would bake
        a permanent (wrong) ``inf`` into this query's rows — the shared
        column map makes later ``ensure_columns`` calls no-ops for them.
        """
        templates = len(matrix.templates)
        slots = len(shell.tables)
        tables = set(shell.tables)
        relevant = [index for index in self._column_of if index.table in tables]
        if relevant:
            matrix.ensure_columns(relevant)
        array = matrix.array
        # Index the query row first so the column list stays the only
        # advanced index (mixing it with a scalar row would reorder axes).
        rows = self._tensor[position]
        rows[:templates, :slots, 0] = array[:, :, 0]
        if relevant:
            local = [matrix.column_of(index) for index in relevant]
            shared = [self._column_of[index] for index in relevant]
            rows[:templates, :slots, shared] = array[:, :, local]

    # ----------------------------------------------------------------- metadata
    @property
    def query_count(self) -> int:
        return len(self._entries)

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """``(queries, max templates, max slots, 1 + candidates)``."""
        return self._tensor.shape

    @property
    def candidate_columns(self) -> tuple[Index, ...]:
        """Candidates of the shared column mapping, in column order."""
        return tuple(self._column_of)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stacked cost arrays."""
        return int(self._tensor.nbytes + self._beta.nbytes)

    def position_of(self, query_name: str) -> int | None:
        """Row of the first statement whose shell carries ``query_name``."""
        return self._position_of.get(query_name)

    # ----------------------------------------------------------------- building
    # reprolint: requires-lock (mutates the shared tensor; callers hold the
    # owning SchemaContext.lock or operate on a process-local cache)
    def ensure_columns(self, indexes: Iterable[Index]) -> None:
        """Extend the shared column mapping with any not-yet-seen indexes.

        Each new index is registered in every member matrix whose query
        touches its table, and the freshly costed column is appended to the
        stack; queries that never touch the table keep ``inf`` (the mask).
        Indexes on tables no query references get no column at all — they
        cannot influence any cost.  Existing memo entries stay valid: they
        were computed with their configuration fully registered, and old
        columns are never mutated.
        """
        new = [index for index in dict.fromkeys(indexes)
               if index is not None and index not in self._column_of
               and index.table in self._slots_by_table]
        if not new:
            return
        base = self._tensor.shape[3]
        query_count, max_templates, max_slots, _ = self._tensor.shape
        block = np.full((query_count, max_templates, max_slots, len(new)),
                        INFEASIBLE_COST, dtype=np.float64)
        offset_of = {index: offset for offset, index in enumerate(new)}
        for position, (shell, matrix) in enumerate(self._entries):
            tables = set(shell.tables)
            relevant = [index for index in new if index.table in tables]
            if not relevant:
                continue
            matrix.ensure_columns(relevant)
            templates = len(matrix.templates)
            slots = len(shell.tables)
            if not templates:
                continue
            local = [matrix.column_of(index) for index in relevant]
            offsets = [offset_of[index] for index in relevant]
            block[position][:templates, :slots, offsets] = \
                matrix.array[:, :, local]
        self._tensor = np.concatenate([self._tensor, block], axis=3)
        for offset, index in enumerate(new):
            self._column_of[index] = base + offset

    # ------------------------------------------------------------------ costing
    def shell_costs(self, configuration: Configuration | Iterable[Index]
                    ) -> np.ndarray:
        """``cost(q, X)`` of every query shell, in workload statement order.

        Returns a read-only float64 vector (memoized — callers must not
        mutate it); infeasible queries hold ``inf``.  Every value is
        bit-identical to :meth:`QueryGammaMatrix.cost` on the same
        configuration.
        """
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        cached = self._cost_memo_by_id.get(id(configuration))
        if cached is not None and cached[0] is configuration:
            return cached[1]
        costs = self._cost_memo_by_key.get(configuration)
        if costs is None:
            costs = self._reduce(configuration)
            costs.setflags(write=False)
            if len(self._cost_memo_by_key) >= _COST_MEMO_LIMIT:
                self._cost_memo_by_key.clear()
                self._cost_memo_by_id.clear()
            self._cost_memo_by_key[configuration] = costs
        if len(self._cost_memo_by_id) >= _COST_MEMO_LIMIT:
            self._cost_memo_by_id.clear()
        self._cost_memo_by_id[id(configuration)] = (configuration, costs)
        return costs

    def _reduce(self, configuration: Configuration) -> np.ndarray:
        """The stacked reduction: ``min_k (beta + sum_i min_a gamma)`` per query."""
        query_count, max_templates, max_slots, _ = self._tensor.shape
        if query_count == 0:
            return np.zeros(0, dtype=np.float64)
        if max_templates == 0:
            return np.full(query_count, INFEASIBLE_COST, dtype=np.float64)
        self.ensure_columns(configuration.indexes)
        # Per-slot minima over {I_0} ∪ X, gathered one table at a time: a
        # candidate only has finite entries in slots holding its own table,
        # so each gather touches exactly the informative columns.  Padded
        # slots keep their initial 0.0 (they belong to no table group).
        slot_min = np.zeros((query_count, max_templates, max_slots),
                            dtype=np.float64)
        for table, (rows, slots) in self._slots_by_table.items():
            columns = [0]
            columns.extend(self._column_of[index]
                           for index in configuration.indexes_on(table)
                           if index in self._column_of)
            gathered = self._tensor[rows[:, None], :, slots[:, None],
                                    np.array(columns, dtype=np.intp)[None, :]]
            # Advanced indexing puts the broadcast (row, column) axes first:
            # ``gathered`` is (pairs, columns, templates).
            slot_min[rows, :, slots] = gathered.min(axis=1)
        # Accumulate slot minima onto beta one slot at a time — each query
        # sees the same addition order as its own gamma matrix, so the totals
        # (and therefore the final costs) are bit-identical to the per-query
        # path.  Padded slots add exactly 0.0.
        totals = self._beta.copy()
        for slot in range(max_slots):
            totals += slot_min[:, :, slot]
        return totals.min(axis=1)

    # ----------------------------------------------------------------- per-query
    def view(self, query_name: str) -> "QueryTensorView":
        """A per-query read view (used by BIP coefficient assembly)."""
        position = self.position_of(query_name)
        if position is None:
            raise KeyError(f"Query {query_name!r} is not part of this tensor")
        return QueryTensorView(self, position)


class QueryTensorView:
    """One query's rows of a workload tensor, with the gamma-matrix read API.

    BIP coefficient assembly consumes per-(template, slot) gamma rows; this
    view answers them from the stacked tensor through the shared candidate →
    column mapping, so the BIP's coefficients come from the same array every
    ``workload_cost`` reduction reads.
    """

    def __init__(self, tensor: WorkloadGammaTensor, position: int):
        self._tensor = tensor
        self._position = position
        shell, matrix = tensor._entries[position]
        self._matrix = matrix
        self._slot_of = {table: slot for slot, table in enumerate(shell.tables)}

    @property
    def matrix(self) -> QueryGammaMatrix:
        """The underlying per-query matrix (correctness oracle)."""
        return self._matrix

    # reprolint: requires-lock (mutates the shared tensor; callers hold the
    # owning SchemaContext.lock or operate on a process-local cache)
    def ensure_columns(self, indexes: Iterable[Index]) -> None:
        """Register columns tensor-wide (keeps matrix and stack in sync)."""
        self._tensor.ensure_columns(indexes)

    def slot_costs(self, position: int, table: str,
                   accesses: Sequence[Index | None],
                   registered: bool = False) -> list[float]:
        """The gamma row of one slot, aligned with ``accesses`` (``None`` = heap)."""
        if not registered:
            self.ensure_columns(accesses)
        slot = self._slot_of.get(table)
        if slot is None:
            return self._matrix.slot_costs(position, table, accesses,
                                           registered=True)
        column_of = self._tensor._column_of
        columns = [0 if access is None else column_of[access]
                   for access in accesses]
        return self._tensor._tensor[self._position, position, slot,
                                    columns].tolist()

    def value(self, position: int, table: str, index: Index | None) -> float:
        """``gamma_qkia`` for template ``position`` / slot ``table`` / ``index``."""
        slot = self._slot_of.get(table)
        if slot is None:
            return self._matrix.value(position, table, index)
        if index is None:
            return float(self._tensor._tensor[self._position, position, slot, 0])
        column = self._tensor._column_of.get(index)
        if column is None:
            self.ensure_columns((index,))
            column = self._tensor._column_of.get(index)
            if column is None:  # index on a table no query touches
                return self._matrix.value(position, table, index)
        return float(self._tensor._tensor[self._position, position, slot, column])
