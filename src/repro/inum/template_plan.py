"""Template plans: internal plan cost plus per-slot order requirements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.indexes.index import Index
from repro.optimizer.plan import Plan, ScanNode
from repro.workload.predicates import ColumnRef

__all__ = ["TemplatePlan"]

#: Cost value used for incompatible (slot, access method) combinations.
INFEASIBLE_COST = float("inf")


@dataclass(frozen=True)
class TemplatePlan:
    """One element of ``TPlans(q)``.

    A template plan is a physical plan whose leaf accesses ("slots") have been
    replaced by holes.  The hole for table ``i`` may require its access method
    to deliver rows sorted on a particular column (an *interesting order*);
    access methods that cannot are incompatible with this template and get an
    infinite ``gamma``.

    Attributes:
        query_name: Name of the query this template belongs to.
        order_requirements: Mapping ``table -> required order column`` (``None``
            when the slot accepts unordered input).
        internal_cost: Cost of the internal operators — the ``beta_qk``
            constant of linear composability.
        representative_plan: The concrete plan the template was derived from
            (useful for explain output and debugging; not used for costing).
    """

    query_name: str
    order_requirements: Mapping[str, ColumnRef | None]
    internal_cost: float
    representative_plan: Plan | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "order_requirements", dict(self.order_requirements))
        # Template plans key the gamma-matrix position lookups on costing hot
        # paths; precompute the hash instead of rebuilding the signature
        # tuple on every dict access.
        object.__setattr__(self, "_hash",
                           hash((self.query_name, self.signature())))

    def __getstate__(self) -> dict:
        # The cached hash is built from string hashes, which vary per process
        # (hash randomisation): never ship it across a pickle boundary.
        state = self.__dict__.copy()
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_hash",
                           hash((self.query_name, self.signature())))

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(self.order_requirements.keys())

    def required_order(self, table: str) -> ColumnRef | None:
        return self.order_requirements.get(table)

    def accepts(self, table: str, scan: ScanNode) -> bool:
        """Whether the given leaf access satisfies this template's slot for ``table``."""
        required = self.order_requirements.get(table)
        if required is None:
            return True
        return scan.output_order == required

    def accepts_index(self, table: str, index: Index | None,
                      heap_order: ColumnRef | None) -> bool:
        """Order-compatibility check from index metadata alone.

        Args:
            table: The slot's table.
            index: The access method (``None`` means heap scan).
            heap_order: The order a heap scan of the table delivers (its
                clustered primary-key column, if any).
        """
        required = self.order_requirements.get(table)
        if required is None:
            return True
        if index is None:
            return heap_order == required
        return index.provides_order_on(required.column) and index.table == table

    def signature(self) -> tuple[tuple[str, str | None], ...]:
        """Hashable summary of the order requirements (used for deduplication)."""
        return tuple(
            (table, None if order is None else order.column)
            for table, order in sorted(self.order_requirements.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemplatePlan):
            return NotImplemented
        return (self.query_name == other.query_name
                and self.signature() == other.signature()
                and abs(self.internal_cost - other.internal_cost) < 1e-9)

    def __hash__(self) -> int:
        return self._hash
