"""Workload compression: weighted representatives with a bounded cost error.

The first stage of the scale-out pipeline (PR 3).  Real workloads repeat
themselves — thousands of statements are instantiations of a few templates
with different constants — and the BIP's size (INUM preprocessing, coefficient
assembly, solve time) is linear-to-superlinear in the statement count.  This
module clusters statements whose INUM cost structure is (approximately)
identical and replaces each cluster by one *representative* statement whose
weight is the sum of the member weights, so every downstream consumer
(``WorkloadGammaTensor`` reductions, BIP objective coefficients ``f_q``)
automatically accounts for the cluster through the standard weighted-workload
machinery.

Two signature modes are supported:

* ``"structural"`` — statements are keyed on their template structure alone:
  tables, join edges, predicate (column, operator) pairs with selectivity
  hints quantised into relative buckets of width ``max_cost_error``, group-by
  / order-by / aggregate / projection shapes, and (for updates) the written
  columns.  No optimizer work is needed, so compression runs before any INUM
  preprocessing — only representatives ever reach the optimizer.
* ``"gamma"`` — statements are keyed on their exact structural identity
  (selectivity hints excluded) *plus* their quantised INUM cost vectors: the
  ``beta`` template costs and the heap column ``gamma_k,i,I0`` of their
  :class:`~repro.inum.gamma_matrix.QueryGammaMatrix`.  This requires template
  enumeration for every statement (an :class:`~repro.inum.cache.InumCache`
  must be supplied) but merges on measured costs instead of AST heuristics.

The cost-error bound: values are quantised to logarithmic buckets of relative
width ``max_cost_error`` — two merged statements agree on every signature
value within a factor of ``1 + max_cost_error``.  In gamma mode this bounds
the heap/beta components of the INUM cost formula exactly; candidate-column
gammas are derived from the same selectivities and track the heap costs, so
the end-to-end bound is a tight heuristic rather than a theorem.  The exact
fallback is ``max_cost_error = 0.0``: no quantisation, statements merge only
when their signature values are bit-identical.

Updates compress like selects, with the written table/columns and the
quantised base-update cost (a monotone proxy for the updated row count, which
also drives the per-index maintenance costs) folded into the signature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import WorkloadError
from repro.workload.query import Query, UpdateQuery
from repro.workload.workload import Workload, WorkloadStatement

if TYPE_CHECKING:  # pragma: no cover - type-checking import only
    from repro.inum.cache import InumCache

__all__ = ["CompressedWorkload", "compress_workload", "SIGNATURE_MODES",
           "structural_statement_key"]

#: Supported signature modes (see module docstring).
SIGNATURE_MODES = ("structural", "gamma")


@dataclass(frozen=True)
class CompressedWorkload:
    """The result of compressing a workload into weighted representatives.

    Attributes:
        original: The uncompressed workload.
        workload: The representative workload; one statement per cluster, in
            the workload order of each cluster's first member, carrying the
            cluster's total weight.
        clusters: Original statement positions per representative, aligned
            with ``workload`` (each cluster's first member is its
            representative).
        representative_of: For every original position, the position of its
            representative within ``workload``.
        signature: The signature mode that produced the clustering.
        max_cost_error: The relative quantisation width used.
    """

    original: Workload
    workload: Workload
    clusters: tuple[tuple[int, ...], ...]
    representative_of: tuple[int, ...]
    signature: str
    max_cost_error: float

    @property
    def original_size(self) -> int:
        return len(self.original)

    @property
    def compressed_size(self) -> int:
        return len(self.workload)

    @property
    def ratio(self) -> float:
        """``compressed / original`` statement count (1.0 = incompressible)."""
        return self.compressed_size / self.original_size

    def summary(self) -> dict[str, float | int | str]:
        return {
            "original_statements": self.original_size,
            "representatives": self.compressed_size,
            "ratio": round(self.ratio, 4),
            "signature": self.signature,
            "max_cost_error": self.max_cost_error,
        }


def compress_workload(workload: Workload, *, signature: str = "structural",
                      max_cost_error: float = 0.0,
                      inum: "InumCache | None" = None) -> CompressedWorkload:
    """Cluster a workload into weighted representative statements.

    Args:
        workload: The workload to compress.
        signature: ``"structural"`` or ``"gamma"`` (see module docstring).
        max_cost_error: Relative quantisation width; ``0.0`` is the exact
            fallback (only signature-identical statements merge).
        inum: Required for gamma signatures — supplies template plans and
            heap gamma columns (built on demand for statements that do not
            have them yet).

    Returns:
        A :class:`CompressedWorkload`; the representative workload preserves
        total weight exactly (``workload.total_weight()`` is unchanged).
    """
    if signature not in SIGNATURE_MODES:
        raise WorkloadError(f"Unknown compression signature {signature!r}; "
                            f"expected one of {SIGNATURE_MODES}")
    if max_cost_error < 0.0:
        raise WorkloadError("max_cost_error must be non-negative")
    if signature == "gamma" and inum is None:
        raise WorkloadError("Gamma-signature compression needs an InumCache")

    clusters: dict[Hashable, list[int]] = {}
    for position, statement in enumerate(workload):
        if signature == "gamma":
            key = _gamma_key(statement.query, inum, max_cost_error)
        else:
            key = _structural_key(statement.query, max_cost_error)
        clusters.setdefault(key, []).append(position)

    ordered = sorted(clusters.values(), key=lambda members: members[0])
    statements = workload.statements
    representatives: list[WorkloadStatement] = []
    representative_of = [0] * len(statements)
    for cluster_position, members in enumerate(ordered):
        total_weight = sum(statements[member].weight for member in members)
        representatives.append(WorkloadStatement(
            statements[members[0]].query, total_weight))
        for member in members:
            representative_of[member] = cluster_position
    compressed = Workload(representatives, name=f"{workload.name}/compressed")
    return CompressedWorkload(
        original=workload,
        workload=compressed,
        clusters=tuple(tuple(members) for members in ordered),
        representative_of=tuple(representative_of),
        signature=signature,
        max_cost_error=max_cost_error,
    )


# ------------------------------------------------------------------ signatures
def _quantise(value: float | None, max_cost_error: float) -> float | int | None:
    """Map a value to its logarithmic bucket of relative width ``1 + error``.

    ``0.0`` (the exact fallback) returns the value itself; two values share a
    bucket only when they agree within a factor of ``1 + max_cost_error``.
    """
    if value is None:
        return None
    if max_cost_error <= 0.0:
        return value
    if value <= 0.0:
        return 0
    if math.isinf(value):
        return math.inf
    return int(round(math.log(value) / math.log1p(max_cost_error)))


def _shell_of(query: Query) -> Query:
    if isinstance(query, UpdateQuery):
        return query.query_shell()
    return query


def _shape_key(shell: Query) -> tuple:
    """The selectivity-free structural identity of a query shell.

    Statements must agree on this part of the signature in *both* modes:
    it determines which candidate indexes are relevant to which slots, so
    merging across different shapes would change the BIP's variable space,
    not just its coefficients.
    """
    joins = tuple(sorted(
        (j.left.table, j.left.column, j.right.table, j.right.column)
        for j in shell.joins))
    predicate_columns = tuple(sorted(
        (p.column.table, p.column.column, p.operator.name)
        for p in shell.predicates))
    return (
        tuple(shell.tables),
        joins,
        predicate_columns,
        tuple((c.table, c.column) for c in shell.group_by),
        tuple((c.table, c.column) for c in shell.order_by),
        tuple((a.function.name,
               None if a.column is None else (a.column.table, a.column.column))
              for a in shell.aggregates),
        tuple((c.table, c.column) for c in shell.projections),
    )


def _update_key(query: Query, max_cost_error: float,
                inum: "InumCache | None") -> tuple | None:
    """The update-specific signature part (``None`` for selects)."""
    if not isinstance(query, UpdateQuery):
        return None
    written = tuple(c.column for c in query.set_columns)
    if inum is not None:
        # The base-update cost is a monotone function of the updated row
        # count, which also drives every ``ucost(a, q)`` term — quantising it
        # bounds the maintenance-cost error alongside the scan costs.
        base_cost = _quantise(inum.optimizer.base_update_cost(query),
                              max_cost_error)
    else:
        base_cost = _quantise(query.update_fraction, max_cost_error)
    return (query.table, written, base_cost)


def structural_statement_key(query: Query, max_cost_error: float = 0.0
                             ) -> Hashable:
    """The structural signature of one statement (public: the unified API's
    workload fingerprint reuses it with the exact ``0.0`` fallback)."""
    shell = _shell_of(query)
    selectivities = tuple(sorted(
        (p.column.table, p.column.column, p.operator.name,
         _quantise(getattr(p, "selectivity_hint", None), max_cost_error))
        for p in shell.predicates))
    return (_shape_key(shell), selectivities,
            _update_key(query, max_cost_error, None))


_structural_key = structural_statement_key


# reprolint: requires-lock (gamma read-through builds lazily; reached only via
# compress_workload under the scale-out advisor's serialization)
def _gamma_key(query: Query, inum: "InumCache", max_cost_error: float
               ) -> Hashable:
    shell = _shell_of(query)
    if inum.uses_gamma_matrix:
        matrix = inum.gamma_matrix(shell)
        betas = tuple(_quantise(float(b), max_cost_error)
                      for b in matrix.beta)
        heap = tuple(_quantise(float(g), max_cost_error)
                     for g in matrix.array[:, :, 0].ravel())
    else:
        templates = inum.templates(shell)
        betas = tuple(_quantise(t.internal_cost, max_cost_error)
                      for t in templates)
        heap = tuple(
            _quantise(inum.gamma(shell, template, table, None), max_cost_error)
            for template in templates for table in shell.tables)
    return (_shape_key(shell), betas, heap,
            _update_key(query, max_cost_error, inum))
