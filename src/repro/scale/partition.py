"""BIP partitioning along the query–candidate interaction graph.

The second stage of the scale-out pipeline (PR 3).  The Theorem-1 BIP couples
two statements only through candidate indexes both of them can use (a shared
``z_a`` variable) and through global resource constraints (the storage
budget).  This module exploits that structure:

1. **Interaction graph** — statements are vertices; two statements interact
   when at least one candidate index is *relevant* to both (same relevance
   rule BIP assembly uses: the candidate's leading key column is referenced
   by the statement on that table, or it covers the referenced columns).
2. **Connected components** — statements in different components share no BIP
   variable except through the storage budget; solving them separately is
   exact once the budget is split.
3. **Balanced shards** — components are bin-packed (and over-large components
   split, trading exactness for parallelism) into ``shard_count`` shards of
   roughly equal total statement weight.  Every shard carries the sub-workload
   plus the subset of candidates relevant to it; candidates relevant to two
   shards are duplicated (the merge step restores a single decision).
4. **Budget split** — the global storage budget is divided across shards by
   greedy water-filling on each shard's candidate demand (total size of its
   candidate subset): equal shares are poured repeatedly, capping saturated
   shards at their demand, so small shards never starve large ones.  A final
   merge BIP over the union of per-shard winners re-applies the *global*
   budget, restoring feasibility of the combined recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bip_builder import BipBuilder
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.index import Index
from repro.workload.query import Query, UpdateQuery
from repro.workload.workload import Workload

__all__ = ["Shard", "PartitionPlan", "partition_workload", "split_budget"]


@dataclass(frozen=True)
class Shard:
    """One independent sub-problem of a partitioned tuning instance."""

    position: int
    workload: Workload
    candidates: tuple[Index, ...]
    statement_positions: tuple[int, ...]
    budget_bytes: float | None = None

    @property
    def statement_count(self) -> int:
        return len(self.statement_positions)

    def with_budget(self, budget_bytes: float | None) -> "Shard":
        return Shard(self.position, self.workload, self.candidates,
                     self.statement_positions, budget_bytes)


@dataclass(frozen=True)
class PartitionPlan:
    """The sharding of one workload/candidate-set tuning instance."""

    shards: tuple[Shard, ...]
    shard_of: tuple[int, ...]  # statement position -> shard position
    component_count: int

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def summary(self) -> dict[str, float | int]:
        sizes = [shard.statement_count for shard in self.shards]
        return {
            "shards": self.shard_count,
            "components": self.component_count,
            "largest_shard": max(sizes),
            "smallest_shard": min(sizes),
        }


def partition_workload(workload: Workload, candidates: CandidateSet,
                       shard_count: int | None = None) -> PartitionPlan:
    """Partition a workload into balanced shards of interacting statements.

    Args:
        workload: The (possibly compressed) workload to shard.
        candidates: The candidate universe; each shard receives the subset
            relevant to its statements.
        shard_count: Desired number of shards.  ``None`` keeps one shard per
            connected component (the exact decomposition).  When fewer
            components exist than requested shards, the heaviest components
            are split by statement weight; when more exist, components are
            bin-packed by weight.

    Returns:
        A :class:`PartitionPlan` with shards ordered (and statements within
        each shard ordered) by original workload position — deterministic for
        a given input regardless of dictionary iteration quirks.
    """
    statements = workload.statements
    relevant = [_relevant_candidates(statement.query, candidates)
                for statement in statements]

    parent = list(range(len(statements)))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(left: int, right: int) -> None:
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[max(root_left, root_right)] = min(root_left, root_right)

    first_user: dict[Index, int] = {}
    for position, indexes in enumerate(relevant):
        for index in indexes:
            anchor = first_user.setdefault(index, position)
            if anchor != position:
                union(anchor, position)

    components: dict[int, list[int]] = {}
    for position in range(len(statements)):
        components.setdefault(find(position), []).append(position)
    groups = sorted(components.values(), key=lambda members: members[0])
    component_count = len(groups)

    def weight_of(members: list[int]) -> float:
        return sum(statements[member].weight for member in members)

    if shard_count is not None and shard_count > 0:
        groups = _split_heavy_groups(groups, weight_of, shard_count)
        groups = _bin_pack_groups(groups, weight_of, shard_count)

    shards: list[Shard] = []
    shard_of = [0] * len(statements)
    for shard_position, members in enumerate(groups):
        members = sorted(members)
        shard_candidates: dict[Index, None] = {}
        for member in members:
            shard_of[member] = shard_position
            for index in relevant[member]:
                shard_candidates.setdefault(index)
        shard_workload = Workload(
            [statements[member] for member in members],
            name=f"{workload.name}/shard{shard_position}")
        shards.append(Shard(
            position=shard_position,
            workload=shard_workload,
            candidates=tuple(shard_candidates),
            statement_positions=tuple(members),
        ))
    return PartitionPlan(shards=tuple(shards), shard_of=tuple(shard_of),
                         component_count=component_count)


def split_budget(plan: PartitionPlan, candidates: CandidateSet,
                 budget_bytes: float | None,
                 oversubscription: float | None = None) -> PartitionPlan:
    """Divide a global storage budget across shards by greedy water-filling.

    Each shard's *demand* is the total size of its candidate subset capped at
    the global budget (it can never usefully consume more than either).
    Equal shares of the pool are poured repeatedly over the unsaturated
    shards until every shard is saturated or the pool is exhausted, so small
    shards never starve large ones.

    The pool is the global budget times ``oversubscription`` (default: the
    shard count, i.e. every shard may fill up to the whole global budget).
    Oversubscribing is deliberate: a shard solved under a starved slice of
    the budget surfaces only small-index winners, and the merge BIP can never
    recover the large winners a global solve would have picked.  Letting
    shards overgenerate and the merge BIP arbitrate under the *global* budget
    (which restores feasibility of the combined recommendation) preserves
    quality; pass ``oversubscription=1.0`` for a strict partition of the
    budget (the sum of shard budgets then never exceeds the global one) and
    values below 1.0 to deliberately under-allocate it.
    """
    if budget_bytes is None:
        return plan
    if oversubscription is None:
        oversubscription = float(plan.shard_count)
    if oversubscription <= 0.0:
        raise ValueError("oversubscription must be positive")
    demands = [min(sum(candidates.size_of(index) for index in shard.candidates),
                   float(budget_bytes))
               for shard in plan.shards]
    allocation = [0.0] * len(demands)
    remaining = float(budget_bytes) * oversubscription
    active = [position for position, demand in enumerate(demands)
              if demand > 0.0]
    while active and remaining > 1e-9:
        share = remaining / len(active)
        saturated: list[int] = []
        for position in active:
            headroom = demands[position] - allocation[position]
            poured = min(share, headroom)
            allocation[position] += poured
            remaining -= poured
            if demands[position] - allocation[position] <= 1e-9:
                saturated.append(position)
        if not saturated:
            break  # every active shard absorbed its full share
        active = [position for position in active if position not in saturated]
    shards = tuple(shard.with_budget(allocation[position])
                   for position, shard in enumerate(plan.shards))
    return PartitionPlan(shards=shards, shard_of=plan.shard_of,
                         component_count=plan.component_count)


# ------------------------------------------------------------------- internals
def _relevant_candidates(query: Query, candidates: CandidateSet
                         ) -> tuple[Index, ...]:
    """Candidates that could serve some slot of this statement.

    Delegates to BIP assembly's own relevance rule — the decomposition is
    only exact because two statements in different shards provably share no
    ``z`` variable, so partitioning must use the same predicate variable
    creation uses.  (Plus update-maintenance coupling: an index on the
    written table interacts with the update through its ``ucost`` term even
    when it cannot serve the shell.)
    """
    shell = query.query_shell() if isinstance(query, UpdateQuery) else query
    relevant: list[Index] = []
    for table in shell.tables:
        referenced = {c.column for c in shell.referenced_columns_on(table)}
        for index in candidates.for_table(table):
            if BipBuilder._relevant(index, referenced):
                relevant.append(index)
    if isinstance(query, UpdateQuery):
        written = {c.column for c in query.set_columns}
        for index in candidates.for_table(query.table):
            if written & set(index.all_columns) and index not in relevant:
                relevant.append(index)
    return tuple(relevant)


def _split_heavy_groups(groups: list[list[int]], weight_of,
                        shard_count: int) -> list[list[int]]:
    """Split the heaviest groups until at least ``shard_count`` exist.

    Splitting a connected component sacrifices exactness for balance; chunks
    stay contiguous in workload order so the result is deterministic.
    """
    groups = [list(members) for members in groups]
    while len(groups) < shard_count:
        heaviest = max(range(len(groups)),
                       key=lambda position: (weight_of(groups[position]),
                                             -position))
        members = groups[heaviest]
        if len(members) < 2:
            break  # nothing left to split
        middle = len(members) // 2
        groups[heaviest:heaviest + 1] = [members[:middle], members[middle:]]
    return groups


def _bin_pack_groups(groups: list[list[int]], weight_of,
                     shard_count: int) -> list[list[int]]:
    """Greedy bin packing: heaviest group first, into the lightest shard."""
    if len(groups) <= shard_count:
        return groups
    ranked = sorted(range(len(groups)),
                    key=lambda position: (-weight_of(groups[position]),
                                          position))
    bins: list[list[int]] = [[] for _ in range(shard_count)]
    loads = [0.0] * shard_count
    for position in ranked:
        lightest = min(range(shard_count),
                       key=lambda bin_position: (loads[bin_position],
                                                 bin_position))
        bins[lightest].extend(groups[position])
        loads[lightest] += weight_of(groups[position])
    packed = [sorted(members) for members in bins if members]
    return sorted(packed, key=lambda members: members[0])
