"""Scale-out tuning: workload compression, BIP partitioning, process pools.

The PR 3 subsystem that lets tuning-problem size scale past a single
monolithic solve, following the divide-and-conquer recipe the paper implies
for thousand-statement workloads:

1. :mod:`repro.scale.compress` — cluster statements into weighted
   representatives (template/gamma signatures, bounded cost error, exact
   fallback);
2. :mod:`repro.scale.partition` — split the BIP along the query–candidate
   interaction graph into balanced shards with a water-filled storage-budget
   split;
3. :mod:`repro.scale.executor` — solve shards (and build gamma matrices) in
   a process pool, merging results deterministically in workload order.

:class:`repro.advisors.scaleout.ScaleOutAdvisor` wires the three stages into
an end-to-end advisor with a final merge BIP over the per-shard winners.
"""

from repro.scale.compress import CompressedWorkload, compress_workload
from repro.scale.partition import PartitionPlan, Shard, partition_workload, split_budget
from repro.scale.executor import ShardExecutor, ShardResult, build_matrices_in_processes

__all__ = [
    "CompressedWorkload",
    "compress_workload",
    "PartitionPlan",
    "Shard",
    "partition_workload",
    "split_budget",
    "ShardExecutor",
    "ShardResult",
    "build_matrices_in_processes",
]
