"""Process-parallel execution of shard solves and gamma-matrix builds.

The third stage of the scale-out pipeline (PR 3).  Template enumeration,
gamma-matrix column costing and BIP solving are GIL-bound Python, so the
thread pool of ``InumCache(build_workers=...)`` cannot scale them on
multi-core machines (the PR 2 open item).  This module moves both across
*process* boundaries:

* :class:`ShardExecutor` solves the per-shard BIPs of a
  :class:`~repro.scale.partition.PartitionPlan` — inline (sharing the
  caller's :class:`~repro.inum.cache.InumCache`) when one worker is
  effective, or in a ``ProcessPoolExecutor`` where each worker rebuilds its
  own optimizer/INUM/BIP stack from the pickled schema and statements.
* :func:`build_matrices_in_processes` shards ``QueryGammaMatrix``
  construction across worker processes; the built matrices are pickled back
  and adopted into the calling cache (``InumCache.adopt_built``) in workload
  order, so cache state is deterministic regardless of scheduling.

Fault tolerance (PR 7): a failed or crashed shard solve is retried under
the executor's :class:`~repro.reliability.retry.RetryPolicy`; a
``BrokenProcessPool`` rebuilds the pool (the crash cannot be attributed to
one future, so every unfinished shard advances its attempt counter); a
shard that exhausts its pool attempts falls back to solving inline on the
caller's cache; and a shard that fails even inline comes back as a
``failed=True`` :class:`ShardResult` for the advisor to degrade around —
a worker crash never changes the recommendation, only the timing.

Determinism and correctness notes: results are merged in shard/workload
order; the synthetic cost model is a pure function of the schema
statistics, so worker-built arrays are bit-identical to locally built ones
(asserted in the tests); ``Index`` / ``TemplatePlan`` recompute their
cached hashes on unpickling, so objects crossing the process boundary key
dictionaries correctly on both sides of it; and a retried shard reruns on
a fresh worker whose counters match the first try's, so recovered runs
fingerprint identically to clean ones.
"""

from __future__ import annotations

import contextlib
import logging
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.catalog.schema import Schema
from repro.core.bip_builder import BipBuilder
from repro.core.constraints import StorageBudgetConstraint
from repro.core.solver import CoPhySolver, SolverBackend
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.index import Index
from repro.inum.cache import (
    DEFAULT_MAX_ORDERS_PER_TABLE,
    DEFAULT_MAX_TEMPLATES_PER_QUERY,
    InumCache,
)
from repro.inum.gamma_matrix import QueryGammaMatrix
from repro.inum.template_plan import TemplatePlan
from repro.lp.budget import SolveBudget
from repro.obs.log import log_event
from repro.obs.metrics import active_registry
from repro.obs.trace import Tracer, activate, current_trace_id, span
from repro.optimizer.whatif import WhatIfOptimizer
from repro.reliability.faults import FaultPlan, armed_plan, maybe_check
from repro.reliability.retry import RetryPolicy, default_retryable
from repro.scale.partition import Shard
from repro.workload.query import Query
from repro.workload.workload import Workload


if TYPE_CHECKING:  # pragma: no cover - type-checking import only
    from repro.scale.partition import PartitionPlan

__all__ = ["ShardResult", "ShardExecutor", "build_matrices_in_processes"]


@dataclass(frozen=True)
class ShardResult:
    """One shard's solved sub-problem.

    ``worker_optimizer_calls`` counts what-if optimizations plus template
    builds performed by a *worker process* for this shard (0 on the inline
    path, where the shared cache's own counters already cover the work) —
    advisors add it to their reported ``whatif_calls`` so optimizer-call
    accounting stays identical across worker counts.
    """

    position: int
    indexes: tuple[Index, ...]
    objective: float
    gap: float
    solve_seconds: float
    statistics: dict[str, float] = field(default_factory=dict)
    worker_optimizer_calls: int = 0
    #: True when the shard's wall-clock slice interrupted its solve.
    timed_out: bool = False
    #: Retries taken (pool resubmissions + the inline fallback) for this shard.
    retries: int = 0
    #: Failures the reliability layer absorbed (retried or degraded around).
    faults_survived: int = 0
    #: True when the shard exhausted its pool attempts and solved inline.
    recovered_inline: bool = False
    #: True when every attempt failed; ``indexes`` is empty and the advisor
    #: merges over the surviving shards (graceful degradation).
    failed: bool = False
    failure: str = ""
    #: Exported worker-side span tree when the shard solved in a worker
    #: process under an active trace (None on the inline path, whose spans
    #: nest directly into the caller's tracer).  The advisor grafts it back
    #: with :func:`repro.obs.trace.adopt`.
    trace: dict | None = None


class ShardExecutor:
    """Solves the shards of a partition plan, optionally across processes.

    Args:
        workers: Process count; ``None`` uses ``os.cpu_count()``.  When the
            effective worker count is 1 (or only one shard exists) the solves
            run inline and share ``inum`` — no pickling, no process startup.
        backend: BIP solver backend for the per-shard solves.
        gap_tolerance / time_limit_seconds: Per-shard solver settings.
        retry_policy: Retry/backoff schedule for failed or crashed shard
            solves (``None`` = the default policy; pass
            ``RetryPolicy(max_attempts=1)`` to disable retries).
        fault_plan: Explicit fault-injection plan; ``None`` defers to the
            process-wide armed plan / ``REPRO_FAULT_PLAN``.
        degrade: When True (default), a shard whose every attempt — pool
            retries plus the inline fallback — failed with a transient
            error is returned as a ``failed=True`` result instead of
            raising, so the advisor can merge over the survivors.
    """

    def __init__(self, workers: int | None = None,
                 backend: SolverBackend = SolverBackend.MILP,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 degrade: bool = True):
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.backend = backend
        self.gap_tolerance = gap_tolerance
        self.time_limit_seconds = time_limit_seconds
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.fault_plan = fault_plan
        self.degrade = degrade

    def effective_workers(self, shard_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, shard_count))

    def solve_shards(self, plan: "PartitionPlan", schema: Schema,
                     inum: InumCache | None = None,
                     shard_time_limit: float | None = None,
                     budget: SolveBudget | None = None
                     ) -> tuple[ShardResult, ...]:
        """Solve every shard and return results in shard order.

        ``shard_time_limit`` is a per-shard wall-clock slice (an anytime
        budget apportioned by the caller); it is min-merged with the
        executor's own ``time_limit_seconds``.  ``budget`` is the request's
        :class:`~repro.lp.budget.SolveBudget`, consulted before every retry
        backoff so recovery never pushes the request past its deadline.
        """
        shards = plan.shards
        if not shards:
            return ()
        time_limit = self.time_limit_seconds
        if shard_time_limit is not None:
            time_limit = (shard_time_limit if time_limit is None
                          else min(time_limit, shard_time_limit))
        faults = (self.fault_plan if self.fault_plan is not None
                  else armed_plan())
        workers = self.effective_workers(len(shards))
        if workers <= 1:
            if inum is None:
                inum = InumCache(WhatIfOptimizer(schema))
            return tuple(
                self._solve_inline_with_retry(shard, inum, time_limit,
                                              faults, budget)
                for shard in shards)
        return self._solve_pooled(shards, schema, inum, time_limit, workers,
                                  faults, budget)

    # -------------------------------------------------------------- inline path
    def _solve_inline_with_retry(self, shard: Shard, inum: InumCache,
                                 time_limit: float | None,
                                 faults: FaultPlan | None,
                                 budget: SolveBudget | None) -> ShardResult:
        counters = {"retries": 0, "survived": 0}

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            counters["retries"] += 1
            counters["survived"] += 1
            _retry_metric("shard_solve")
            log_event(logging.WARNING, "shard_retry", shard=shard.position,
                      attempt=attempt, error=repr(exc),
                      delay=round(delay, 3))

        try:
            result = self.retry_policy.call(
                lambda attempt: _solve_shard_inline(
                    shard, inum, self.backend, self.gap_tolerance, time_limit,
                    fault_plan=faults, attempt=attempt),
                budget=budget, on_retry=on_retry)
        except Exception as exc:
            if not (self.degrade and default_retryable(exc)):
                raise
            counters["survived"] += 1
            log_event(logging.WARNING, "shard_degraded",
                      shard=shard.position, error=repr(exc))
            return _failed_shard_result(shard, exc, counters)
        return replace(result, retries=counters["retries"],
                       faults_survived=counters["survived"])

    # ---------------------------------------------------------------- pool path
    def _solve_pooled(self, shards: Sequence[Shard], schema: Schema,
                      inum: InumCache | None, time_limit: float | None,
                      workers: int, faults: FaultPlan | None,
                      budget: SolveBudget | None) -> tuple[ShardResult, ...]:
        caps = (inum.enumeration_caps if inum is not None
                else (DEFAULT_MAX_ORDERS_PER_TABLE,
                      DEFAULT_MAX_TEMPLATES_PER_QUERY))
        use_matrix = inum.uses_gamma_matrix if inum is not None else True
        policy = self.retry_policy
        rng = random.Random(policy.seed) if policy.seed is not None else None
        results: dict[int, ShardResult] = {}
        attempt_no = {shard.position: 1 for shard in shards}
        retries = {shard.position: 0 for shard in shards}
        survived = {shard.position: 0 for shard in shards}
        remaining = list(shards)
        fallback: list[Shard] = []
        round_no = 1
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while remaining:
                futures = [
                    (shard, pool.submit(
                        _solve_shard_job,
                        self._shard_job(shard, schema, caps, use_matrix,
                                        time_limit, faults,
                                        attempt_no[shard.position])))
                    for shard in remaining]
                failed_round: list[Shard] = []
                pool_broken = False
                for shard, future in futures:
                    # A broken pool resolves every pending future with
                    # BrokenProcessPool immediately, while siblings that
                    # finished before the crash keep their results — so
                    # every .result() below returns without blocking.
                    try:
                        results[shard.position] = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        failed_round.append(shard)
                    except Exception as exc:
                        if not default_retryable(exc):
                            raise
                        failed_round.append(shard)
                if pool_broken:
                    log_event(logging.WARNING, "shard_pool_broken",
                              round=round_no, workers=workers,
                              shards=[s.position for s in failed_round])
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=workers)
                if not failed_round:
                    break
                # A broken pool cannot attribute the crash to one shard, so
                # every unfinished shard advances its attempt — otherwise
                # the guilty shard would rerun at attempt 1 forever against
                # an attempt-keyed fault schedule.
                retry_next: list[Shard] = []
                for shard in failed_round:
                    position = shard.position
                    survived[position] += 1
                    if attempt_no[position] >= policy.max_attempts:
                        fallback.append(shard)
                    else:
                        attempt_no[position] += 1
                        retries[position] += 1
                        _retry_metric("shard_solve")
                        retry_next.append(shard)
                if retry_next:
                    delay = policy.backoff_delay(round_no, rng)
                    if budget is not None and (budget.expired()
                                               or not budget.can_spend(delay)):
                        # No wall clock left for another pool round: the
                        # inline fallback is the only recovery still allowed.
                        fallback.extend(retry_next)
                        retry_next = []
                    elif delay > 0:
                        time.sleep(delay)
                remaining = retry_next
                round_no += 1
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

        if fallback:
            if inum is None:
                inum = InumCache(WhatIfOptimizer(schema))
            for shard in sorted(fallback, key=lambda s: s.position):
                position = shard.position
                retries[position] += 1
                _retry_metric("shard_solve")
                log_event(logging.WARNING, "shard_fallback_inline",
                          shard=position, attempt=attempt_no[position] + 1)
                try:
                    result = _solve_shard_inline(
                        shard, inum, self.backend, self.gap_tolerance,
                        time_limit, fault_plan=faults,
                        attempt=attempt_no[position] + 1)
                except Exception as exc:
                    if not (self.degrade and default_retryable(exc)):
                        raise
                    survived[position] += 1
                    log_event(logging.WARNING, "shard_degraded",
                              shard=position, error=repr(exc))
                    results[position] = _failed_shard_result(
                        shard, exc, {"retries": retries[position],
                                     "survived": survived[position]})
                else:
                    results[position] = replace(result, recovered_inline=True)

        return tuple(
            replace(results[shard.position],
                    retries=retries[shard.position],
                    faults_survived=survived[shard.position])
            for shard in shards)

    def _shard_job(self, shard: Shard, schema: Schema, caps, use_matrix: bool,
                   time_limit: float | None, faults: FaultPlan | None,
                   attempt: int) -> tuple:
        # The ambient trace id rides the job tuple so the worker records its
        # spans under the same trace as the request that dispatched it; the
        # dispatch timestamp is wall-clock (time.time) because perf_counter
        # epochs are not comparable across processes — the worker turns the
        # delta into the shard span's queue_wait_ms.
        return (schema, shard.position, shard.workload.statements,
                shard.candidates, shard.budget_bytes, self.backend.value,
                self.gap_tolerance, time_limit, caps, use_matrix, faults,
                attempt, current_trace_id(), time.time())


def _retry_metric(site: str) -> None:
    """Count one reliability-layer retry against the active registry."""
    active_registry().counter(
        "repro_retries_total",
        "Retries taken by the reliability layer", ("site",)).inc(site=site)


def _failed_shard_result(shard: Shard, exc: BaseException,
                         counters: dict[str, int]) -> ShardResult:
    return ShardResult(
        position=shard.position, indexes=(), objective=float("inf"),
        gap=float("inf"), solve_seconds=0.0,
        statistics={"statements": float(len(shard.workload)),
                    "candidates": float(len(shard.candidates))},
        retries=counters["retries"], faults_survived=counters["survived"],
        failed=True, failure=f"{type(exc).__name__}: {exc}")


# reprolint: requires-lock (inline path runs under the caller's context lock;
# the worker path operates on a process-local cache)
def _solve_shard_inline(shard: Shard, inum: InumCache,
                        backend: SolverBackend, gap_tolerance: float,
                        time_limit_seconds: float | None,
                        fault_plan: FaultPlan | None = None,
                        attempt: int = 1,
                        in_worker: bool = False,
                        queue_wait_ms: float | None = None) -> ShardResult:
    """Solve one shard reusing the caller's INUM cache (no process hop).

    The fault check fires *before* any optimizer work, so a retried attempt
    repeats exactly the work the failed one never did — optimizer-call
    accounting (and with it the result fingerprint) stays identical to a
    fault-free run.  ``queue_wait_ms`` is the dispatch-to-start gap a
    process-pool job measured; it lands on the shard span so a saturated
    worker pool is visible in the trace.
    """
    with span(f"shard[{shard.position}]", statements=len(shard.workload),
              candidates=len(shard.candidates), attempt=attempt,
              in_worker=in_worker) as shard_span:
        if queue_wait_ms is not None:
            shard_span.set(queue_wait_ms=round(queue_wait_ms, 3))
        maybe_check(fault_plan, "shard_solve", key=shard.position,
                    attempt=attempt, in_worker=in_worker)
        started = time.perf_counter()
        candidates = CandidateSet(inum.schema, shard.candidates)
        inum.prepare(shard.workload, candidates)
        bip = BipBuilder(inum).build(shard.workload, candidates,
                                     model_name=f"shard-{shard.position}-bip")
        constraints = ()
        if shard.budget_bytes is not None:
            constraints = (StorageBudgetConstraint(
                shard.budget_bytes,
                name=f"storage_budget[shard{shard.position}]"),)
        solver = CoPhySolver(backend=backend, gap_tolerance=gap_tolerance,
                             time_limit_seconds=time_limit_seconds)
        report = solver.solve(bip, hard_constraints=constraints)
        shard_span.set(gap=round(report.gap, 6), timed_out=report.timed_out,
                       indexes=len(report.configuration.indexes))
        return ShardResult(
            position=shard.position,
            indexes=report.configuration.indexes,
            objective=report.objective,
            gap=report.gap,
            solve_seconds=time.perf_counter() - started,
            timed_out=report.timed_out,
            statistics={
                "statements": float(len(shard.workload)),
                "candidates": float(len(shard.candidates)),
                "variables": bip.statistics.get("variables", 0.0),
                "constraints": bip.statistics.get("constraints", 0.0),
            },
        )


def _solve_shard_job(job: tuple) -> ShardResult:
    """Worker-side shard solve: rebuild the full stack from pickled inputs."""
    (schema, position, statements, indexes, budget_bytes, backend_value,
     gap_tolerance, time_limit_seconds, caps, use_matrix, fault_plan,
     attempt, trace_id, dispatch_ts) = job
    queue_wait_ms = max(0.0, (time.time() - dispatch_ts) * 1000.0)
    plan = fault_plan if fault_plan is not None else armed_plan()
    optimizer = WhatIfOptimizer(schema)
    inum = InumCache(optimizer, max_orders_per_table=caps[0],
                     max_templates_per_query=caps[1],
                     use_gamma_matrix=use_matrix)
    workload = Workload(statements, name=f"shard{position}")
    shard = Shard(position=position, workload=workload, candidates=indexes,
                  statement_positions=tuple(range(len(statements))),
                  budget_bytes=budget_bytes)
    # The worker records its own tracer under the caller's trace id; the
    # shard span opened inside _solve_shard_inline becomes its root and the
    # exported tree is pickled back for the advisor to graft into the
    # request trace.
    tracer = Tracer(trace_id) if trace_id is not None else None
    scope = (activate(tracer) if tracer is not None
             else contextlib.nullcontext())
    with scope:
        result = _solve_shard_inline(shard, inum,
                                     SolverBackend(backend_value),
                                     gap_tolerance, time_limit_seconds,
                                     fault_plan=plan, attempt=attempt,
                                     in_worker=True,
                                     queue_wait_ms=queue_wait_ms)
    # The caller's counters never saw this process's optimizer: report its
    # work so the advisor's whatif_calls metric covers the shard phase.
    result = replace(result,
                     worker_optimizer_calls=(optimizer.whatif_calls
                                             + inum.template_build_calls))
    if tracer is not None:
        result = replace(result, trace=tracer.export())
    return result


# --------------------------------------------------------- matrix build shards
def build_matrices_in_processes(cache: InumCache, shells: Sequence[Query],
                                indexes: tuple[Index, ...],
                                workers: int | None = None,
                                retry_policy: RetryPolicy | None = None,
                                fault_plan: FaultPlan | None = None) -> int:
    """Build pending gamma matrices in worker processes and adopt them.

    Only shells the cache has not built yet are dispatched; each worker
    constructs its own optimizer/cache from the pickled schema, builds its
    chunk of matrices (candidate columns included) and pickles them back.
    Adoption happens on the calling side in workload order.  Returns the
    number of shells built remotely.

    Worker failures are retried under ``retry_policy`` (a fresh pool per
    attempt); when retries are exhausted on a transient error the function
    returns 0 and the caller builds the matrices locally — the process pool
    is an accelerator, never a correctness dependency.
    """
    pending = list(cache.pending_shells(shells))
    workers = workers if workers is not None else (os.cpu_count() or 1)
    workers = min(workers, len(pending))
    if workers <= 1 or len(pending) < 2:
        return 0
    caps = cache.enumeration_caps
    chunks = [pending[offset::workers] for offset in range(workers)]
    plan = fault_plan if fault_plan is not None else armed_plan()
    policy = retry_policy if retry_policy is not None else RetryPolicy()

    def build_all(attempt: int) -> list:
        jobs = [(cache.schema, chunk, indexes, caps, cache.uses_gamma_matrix,
                 plan, attempt)
                for chunk in chunks if chunk]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_build_matrices_job, jobs))

    def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
        _retry_metric("matrix_build")
        log_event(logging.WARNING, "matrix_build_retry", attempt=attempt,
                  shells=len(pending), error=repr(exc),
                  delay=round(delay, 3))

    try:
        results = policy.call(build_all, on_retry=on_retry)
    except Exception as exc:
        if not default_retryable(exc):
            raise
        # Degraded, not silent: the caller rebuilds the matrices locally,
        # and the log records that the process pool was lost doing it.
        log_event(logging.WARNING, "matrix_build_degraded",
                  shells=len(pending), workers=workers, error=repr(exc))
        return 0
    by_name: dict[str, tuple[Query, tuple[TemplatePlan, ...],
                             QueryGammaMatrix | None]] = {}
    build_calls = 0
    for entries, calls in results:
        build_calls += calls
        for entry in entries:
            by_name[entry[0].name] = entry
    cache.adopt_built((by_name[shell.name] for shell in pending
                       if shell.name in by_name), build_calls=build_calls)
    return len(pending)


def _build_matrices_job(job: tuple) -> tuple[list, int]:
    """Worker-side matrix build for one chunk of query shells."""
    schema, shells, indexes, caps, use_matrix, fault_plan, attempt = job
    plan = fault_plan if fault_plan is not None else armed_plan()
    maybe_check(plan, "matrix_build", attempt=attempt, in_worker=True)
    optimizer = WhatIfOptimizer(schema)
    cache = InumCache(optimizer, max_orders_per_table=caps[0],
                      max_templates_per_query=caps[1],
                      use_gamma_matrix=use_matrix)
    entries = [cache.build_entry(shell, indexes) for shell in shells]
    return entries, cache.template_build_calls
