"""Process-parallel execution of shard solves and gamma-matrix builds.

The third stage of the scale-out pipeline (PR 3).  Template enumeration,
gamma-matrix column costing and BIP solving are GIL-bound Python, so the
thread pool of ``InumCache(build_workers=...)`` cannot scale them on
multi-core machines (the PR 2 open item).  This module moves both across
*process* boundaries:

* :class:`ShardExecutor` solves the per-shard BIPs of a
  :class:`~repro.scale.partition.PartitionPlan` — inline (sharing the
  caller's :class:`~repro.inum.cache.InumCache`) when one worker is
  effective, or in a ``ProcessPoolExecutor`` where each worker rebuilds its
  own optimizer/INUM/BIP stack from the pickled schema and statements.
* :func:`build_matrices_in_processes` shards ``QueryGammaMatrix``
  construction across worker processes; the built matrices are pickled back
  and adopted into the calling cache (``InumCache.adopt_built``) in workload
  order, so cache state is deterministic regardless of scheduling.

Determinism and correctness notes: results are merged in shard/workload
order (``ProcessPoolExecutor.map`` preserves input order); the synthetic
cost model is a pure function of the schema statistics, so worker-built
arrays are bit-identical to locally built ones (asserted in the tests); and
``Index`` / ``TemplatePlan`` recompute their cached hashes on unpickling, so
objects crossing the process boundary key dictionaries correctly on both
sides of it.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.catalog.schema import Schema
from repro.core.bip_builder import BipBuilder
from repro.core.constraints import StorageBudgetConstraint
from repro.core.solver import CoPhySolver, SolverBackend
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.index import Index
from repro.inum.cache import (
    DEFAULT_MAX_ORDERS_PER_TABLE,
    DEFAULT_MAX_TEMPLATES_PER_QUERY,
    InumCache,
)
from repro.inum.gamma_matrix import QueryGammaMatrix
from repro.inum.template_plan import TemplatePlan
from repro.optimizer.whatif import WhatIfOptimizer
from repro.scale.partition import Shard
from repro.workload.query import Query
from repro.workload.workload import Workload, WorkloadStatement

if TYPE_CHECKING:  # pragma: no cover - type-checking import only
    from repro.scale.partition import PartitionPlan

__all__ = ["ShardResult", "ShardExecutor", "build_matrices_in_processes"]


@dataclass(frozen=True)
class ShardResult:
    """One shard's solved sub-problem.

    ``worker_optimizer_calls`` counts what-if optimizations plus template
    builds performed by a *worker process* for this shard (0 on the inline
    path, where the shared cache's own counters already cover the work) —
    advisors add it to their reported ``whatif_calls`` so optimizer-call
    accounting stays identical across worker counts.
    """

    position: int
    indexes: tuple[Index, ...]
    objective: float
    gap: float
    solve_seconds: float
    statistics: dict[str, float] = field(default_factory=dict)
    worker_optimizer_calls: int = 0
    #: True when the shard's wall-clock slice interrupted its solve.
    timed_out: bool = False


class ShardExecutor:
    """Solves the shards of a partition plan, optionally across processes.

    Args:
        workers: Process count; ``None`` uses ``os.cpu_count()``.  When the
            effective worker count is 1 (or only one shard exists) the solves
            run inline and share ``inum`` — no pickling, no process startup.
        backend: BIP solver backend for the per-shard solves.
        gap_tolerance / time_limit_seconds: Per-shard solver settings.
    """

    def __init__(self, workers: int | None = None,
                 backend: SolverBackend = SolverBackend.MILP,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.backend = backend
        self.gap_tolerance = gap_tolerance
        self.time_limit_seconds = time_limit_seconds

    def effective_workers(self, shard_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, shard_count))

    def solve_shards(self, plan: "PartitionPlan", schema: Schema,
                     inum: InumCache | None = None,
                     shard_time_limit: float | None = None
                     ) -> tuple[ShardResult, ...]:
        """Solve every shard and return results in shard order.

        ``shard_time_limit`` is a per-shard wall-clock slice (an anytime
        budget apportioned by the caller); it is min-merged with the
        executor's own ``time_limit_seconds``.
        """
        shards = plan.shards
        if not shards:
            return ()
        time_limit = self.time_limit_seconds
        if shard_time_limit is not None:
            time_limit = (shard_time_limit if time_limit is None
                          else min(time_limit, shard_time_limit))
        workers = self.effective_workers(len(shards))
        if workers <= 1:
            if inum is None:
                inum = InumCache(WhatIfOptimizer(schema))
            return tuple(
                _solve_shard_inline(shard, inum, self.backend,
                                    self.gap_tolerance, time_limit)
                for shard in shards)
        caps = (inum.enumeration_caps if inum is not None
                else (DEFAULT_MAX_ORDERS_PER_TABLE,
                      DEFAULT_MAX_TEMPLATES_PER_QUERY))
        use_matrix = inum.uses_gamma_matrix if inum is not None else True
        jobs = [(schema, shard.position, shard.workload.statements,
                 shard.candidates, shard.budget_bytes, self.backend.value,
                 self.gap_tolerance, time_limit, caps,
                 use_matrix)
                for shard in shards]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return tuple(pool.map(_solve_shard_job, jobs))


def _solve_shard_inline(shard: Shard, inum: InumCache,
                        backend: SolverBackend, gap_tolerance: float,
                        time_limit_seconds: float | None) -> ShardResult:
    """Solve one shard reusing the caller's INUM cache (no process hop)."""
    started = time.perf_counter()
    candidates = CandidateSet(inum.schema, shard.candidates)
    inum.prepare(shard.workload, candidates)
    bip = BipBuilder(inum).build(shard.workload, candidates,
                                 model_name=f"shard-{shard.position}-bip")
    constraints = ()
    if shard.budget_bytes is not None:
        constraints = (StorageBudgetConstraint(
            shard.budget_bytes, name=f"storage_budget[shard{shard.position}]"),)
    solver = CoPhySolver(backend=backend, gap_tolerance=gap_tolerance,
                         time_limit_seconds=time_limit_seconds)
    report = solver.solve(bip, hard_constraints=constraints)
    return ShardResult(
        position=shard.position,
        indexes=report.configuration.indexes,
        objective=report.objective,
        gap=report.gap,
        solve_seconds=time.perf_counter() - started,
        timed_out=report.timed_out,
        statistics={
            "statements": float(len(shard.workload)),
            "candidates": float(len(shard.candidates)),
            "variables": bip.statistics.get("variables", 0.0),
            "constraints": bip.statistics.get("constraints", 0.0),
        },
    )


def _solve_shard_job(job: tuple) -> ShardResult:
    """Worker-side shard solve: rebuild the full stack from pickled inputs."""
    (schema, position, statements, indexes, budget_bytes, backend_value,
     gap_tolerance, time_limit_seconds, caps, use_matrix) = job
    optimizer = WhatIfOptimizer(schema)
    inum = InumCache(optimizer, max_orders_per_table=caps[0],
                     max_templates_per_query=caps[1],
                     use_gamma_matrix=use_matrix)
    workload = Workload(statements, name=f"shard{position}")
    shard = Shard(position=position, workload=workload, candidates=indexes,
                  statement_positions=tuple(range(len(statements))),
                  budget_bytes=budget_bytes)
    result = _solve_shard_inline(shard, inum, SolverBackend(backend_value),
                                 gap_tolerance, time_limit_seconds)
    # The caller's counters never saw this process's optimizer: report its
    # work so the advisor's whatif_calls metric covers the shard phase.
    return ShardResult(
        position=result.position, indexes=result.indexes,
        objective=result.objective, gap=result.gap,
        solve_seconds=result.solve_seconds, statistics=result.statistics,
        worker_optimizer_calls=(optimizer.whatif_calls
                                + inum.template_build_calls),
        timed_out=result.timed_out)


# --------------------------------------------------------- matrix build shards
def build_matrices_in_processes(cache: InumCache, shells: Sequence[Query],
                                indexes: tuple[Index, ...],
                                workers: int | None = None) -> int:
    """Build pending gamma matrices in worker processes and adopt them.

    Only shells the cache has not built yet are dispatched; each worker
    constructs its own optimizer/cache from the pickled schema, builds its
    chunk of matrices (candidate columns included) and pickles them back.
    Adoption happens on the calling side in workload order.  Returns the
    number of shells built remotely.
    """
    pending = list(cache.pending_shells(shells))
    workers = workers if workers is not None else (os.cpu_count() or 1)
    workers = min(workers, len(pending))
    if workers <= 1 or len(pending) < 2:
        return 0
    caps = cache.enumeration_caps
    chunks = [pending[offset::workers] for offset in range(workers)]
    jobs = [(cache.schema, chunk, indexes, caps, cache.uses_gamma_matrix)
            for chunk in chunks if chunk]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_build_matrices_job, jobs))
    by_name: dict[str, tuple[Query, tuple[TemplatePlan, ...],
                             QueryGammaMatrix | None]] = {}
    build_calls = 0
    for entries, calls in results:
        build_calls += calls
        for entry in entries:
            by_name[entry[0].name] = entry
    cache.adopt_built((by_name[shell.name] for shell in pending
                       if shell.name in by_name), build_calls=build_calls)
    return len(pending)


def _build_matrices_job(job: tuple) -> tuple[list, int]:
    """Worker-side matrix build for one chunk of query shells."""
    schema, shells, indexes, caps, use_matrix = job
    optimizer = WhatIfOptimizer(schema)
    cache = InumCache(optimizer, max_orders_per_table=caps[0],
                      max_templates_per_query=caps[1],
                      use_gamma_matrix=use_matrix)
    entries = [cache.build_entry(shell, indexes) for shell in shells]
    return entries, cache.template_build_calls
