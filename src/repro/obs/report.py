"""``python -m repro.obs.report`` — render a trace as a flame-style summary.

Input is any of the JSON shapes the stack produces:

* a raw trace export (``{"trace_id": ..., "root": {...}}``) — what
  ``Tracer.export()`` returns and ``TuningResult.extras["trace"]`` holds;
* a trace-store entry (``GET /v1/traces/{id}``) — the export wrapped with
  advisor/status/duration metadata and, when sampled, the hotspot table;
* a full result payload (``TuningResult.to_payload()`` or the server's
  ``{"result": {...}}`` tune response) — the embedded trace is extracted.

Read from a file (or ``-`` for stdin), or fetch straight from a live
server's trace store::

    python -m repro.obs.report trace.json
    python -m repro.obs.report --url http://127.0.0.1:8080 --slow
    python -m repro.obs.report --url http://127.0.0.1:8080 --trace-id <id>

Each span prints its duration, share of the root, a proportional bar, and
the resource attributes PR 10 records (``cpu_ms``, ``lock_wait_ms``,
``queue_wait_ms``, ``mem_peak_kb``); a captured profile renders as a
top-hotspots table underneath.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

__all__ = ["load_entry", "render_entry", "main"]

#: Resource attributes surfaced on every span line (when present).
_RESOURCE_ATTRS = ("cpu_ms", "lock_wait_ms", "queue_wait_ms", "mem_peak_kb")
_BAR_WIDTH = 24


def load_entry(data: dict[str, Any]) -> dict[str, Any]:
    """Normalise any of the accepted JSON shapes into a store-style entry."""
    if not isinstance(data, dict):
        raise ValueError("trace input must be a JSON object")
    if "result" in data and isinstance(data["result"], dict):
        data = data["result"]
    if "root" in data:  # a raw Tracer.export() payload
        return {"trace_id": data.get("trace_id"), "trace": data}
    if isinstance(data.get("trace"), dict):
        entry = dict(data)
        entry.setdefault("trace_id", entry["trace"].get("trace_id"))
        return entry
    raise ValueError(
        "unrecognised trace input: expected a trace export ('root'), a "
        "trace-store entry or a result payload ('trace')")


def _format_attrs(attrs: dict[str, Any]) -> str:
    parts = [f"{name}={attrs[name]}" for name in _RESOURCE_ATTRS
             if name in attrs]
    return ("  [" + " ".join(parts) + "]") if parts else ""


def _render_span(node: dict[str, Any], root_ms: float, depth: int,
                 lines: list[str]) -> None:
    duration = float(node.get("duration_ms") or 0.0)
    share = duration / root_ms if root_ms > 0 else 0.0
    bar = "#" * max(1, round(share * _BAR_WIDTH)) if duration > 0 else ""
    lines.append(f"  {'  ' * depth}{node.get('name', '?'):<{max(4, 28 - 2 * depth)}}"
                 f" {duration:>10.2f} ms {share * 100:>5.1f}%"
                 f"  {bar:<{_BAR_WIDTH}}"
                 f"{_format_attrs(node.get('attrs') or {})}")
    for child in node.get("children", ()):
        if isinstance(child, dict):
            _render_span(child, root_ms, depth + 1, lines)


def render_entry(entry: dict[str, Any]) -> str:
    """The printable report of one normalised entry."""
    lines: list[str] = []
    meta = [f"trace {entry.get('trace_id')}"]
    for field in ("advisor", "status", "request_id"):
        if entry.get(field):
            meta.append(f"{field}={entry[field]}")
    if entry.get("duration_ms") is not None:
        meta.append(f"duration={entry['duration_ms']:.2f} ms")
    if entry.get("slow"):
        meta.append("SLOW")
    lines.append("  ".join(meta))
    root = (entry.get("trace") or {}).get("root")
    if isinstance(root, dict):
        lines.append("")
        _render_span(root, float(root.get("duration_ms") or 0.0), 0, lines)
    else:
        lines.append("(no span tree recorded)")
    profile = entry.get("profile")
    if isinstance(profile, dict) and profile.get("top"):
        lines.append("")
        lines.append(f"hotspots ({profile.get('engine', '?')}, "
                     f"sorted by {profile.get('sort', '?')}):")
        lines.append(f"  {'tottime':>10}  {'cumtime':>10}  {'calls':>8}  "
                     f"function")
        for row in profile["top"]:
            lines.append(f"  {row.get('tottime_ms', 0):>8.2f}ms"
                         f"  {row.get('cumtime_ms', 0):>8.2f}ms"
                         f"  {row.get('calls', 0):>8}"
                         f"  {row.get('function', '?')}"
                         f"  ({row.get('file', '?')})")
    return "\n".join(lines)


def _fetch(url: str, trace_id: str | None, slow: bool) -> dict[str, Any]:
    from urllib.request import urlopen

    base = url.rstrip("/")
    if trace_id is None:
        with urlopen(f"{base}/v1/traces") as response:
            listing = json.loads(response.read())
        rows = listing.get("traces", [])
        if slow:
            rows = [row for row in rows if row.get("slow")]
        if not rows:
            raise SystemExit("no matching traces in the server's store")
        trace_id = rows[0]["trace_id"]
    with urlopen(f"{base}/v1/traces/{trace_id}") as response:
        return json.loads(response.read())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="render a stored/exported trace as a flame-style "
                    "span and hotspot summary")
    parser.add_argument("path", nargs="?", default=None,
                        help="JSON file holding a trace export, trace-store "
                             "entry or result payload ('-' for stdin)")
    parser.add_argument("--url", default=None,
                        help="fetch from a live server's /v1/traces store "
                             "instead of a file")
    parser.add_argument("--trace-id", default=None,
                        help="with --url: the trace id to fetch (default: "
                             "the newest entry)")
    parser.add_argument("--slow", action="store_true",
                        help="with --url: pick the newest slow-flagged entry")
    args = parser.parse_args(argv)

    if args.url is not None:
        data = _fetch(args.url, args.trace_id, args.slow)
    elif args.path is None:
        parser.error("give a file path (or '-') or --url")
    elif args.path == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)

    try:
        entry = load_entry(data)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_entry(entry))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
