"""Contention accounting and resource profiling primitives (PR 10).

Three pieces, all stdlib-only:

* :class:`InstrumentedLock` — a named wrapper around a ``threading``
  lock that measures how long each acquirer *waited* (held time is what the
  span tree already shows; waited time is what a lock-split decision needs).
  Every acquisition lands in the ambient registry's
  ``repro_lock_wait_seconds{lock}`` histogram — uncontended and re-entrant
  acquires record a zero wait, so the ``_count`` series doubles as the
  acquisition rate — and positive waits additionally accumulate in a
  thread-local so the request's root span can carry a ``lock_wait_ms``
  attribute (:func:`drain_pending_waits`).
* :func:`note_queue_wait` — the service's thread pool records how long an
  admitted request sat queued before a worker picked it up; drained into the
  root span the same way (``queue_wait_ms``).
* :class:`ProfileSampler` — opt-in sampled ``cProfile`` capture
  (``Tuner(profile_every=N)``): every Nth request runs under a profiler and
  its top-N hotspot table (:meth:`ProfileSampler.hotspots`) rides
  ``TuningResult.extras["profile"]`` — volatile and fingerprint-excluded,
  like the trace.

The wait accumulator is per-thread on purpose: a pool thread serves one
request at a time, the facade drains the accumulator when the root span
opens (attributing the context-lock and queue waits that preceded it) and
discards any residue when the request finishes, so waits never leak across
requests that reuse the thread.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import threading
import time
import tracemalloc
from typing import Any

from repro.obs.metrics import WAIT_BUCKETS, active_registry

__all__ = ["InstrumentedLock", "ProfileSampler", "drain_pending_waits",
           "ensure_memory_tracking", "note_queue_wait"]


class InstrumentedLock:
    """A named lock recording wait-time per acquisition.

    Wraps an ``RLock`` by default (the schema-context lock is re-entrant);
    pass ``lock=threading.Lock()`` for plain mutexes.  The fast path tries a
    non-blocking acquire first, so an uncontended acquisition costs one
    extra histogram observe and no second clock read.

    ``name`` becomes the bounded ``lock`` label value — construct these with
    literal names only (see the label-cardinality contract in
    :mod:`repro.obs.metrics`).
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str, lock: Any = None):
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._lock.acquire(blocking=False):
            self._record(0.0)
            return True
        if not blocking:
            return False
        started = time.perf_counter()
        acquired = self._lock.acquire(True, timeout)
        if acquired:
            self._record(time.perf_counter() - started)
        return acquired

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def _record(self, waited: float) -> None:
        active_registry().histogram(
            "repro_lock_wait_seconds",
            "Seconds callers waited to acquire a named lock",
            ("lock",), buckets=WAIT_BUCKETS).observe(waited, lock=self.name)
        if waited > 0.0:
            _note_wait("lock_wait_s", waited)


# ------------------------------------------------------- per-request waits
_PENDING_WAITS = threading.local()


def _note_wait(key: str, seconds: float) -> None:
    waits = getattr(_PENDING_WAITS, "waits", None)
    if waits is None:
        waits = _PENDING_WAITS.waits = {}
    waits[key] = waits.get(key, 0.0) + seconds


def note_queue_wait(seconds: float) -> None:
    """Accumulate pool-queue wait for attribution to the next root span."""
    _note_wait("queue_wait_s", seconds)


def drain_pending_waits() -> dict[str, float]:
    """Take (and clear) this thread's accumulated waits.

    Called by the facade when the root span opens — the returned
    ``lock_wait_s`` / ``queue_wait_s`` seconds become root-span attributes —
    and again, discarding, when the request finishes.
    """
    waits = getattr(_PENDING_WAITS, "waits", None)
    if not waits:
        return {}
    _PENDING_WAITS.waits = {}
    return waits


def ensure_memory_tracking() -> None:
    """Start ``tracemalloc`` if it is not already tracing (idempotent)."""
    if not tracemalloc.is_tracing():
        tracemalloc.start()


class ProfileSampler:
    """Thread-safe every-Nth-request ``cProfile`` sampling.

    The first request is always captured (``every=1`` profiles everything),
    so a single smoke request is enough to exercise the whole path.
    """

    def __init__(self, every: int, top: int = 10):
        if every < 1:
            raise ValueError("profile_every must be >= 1 (or None to disable)")
        if top < 1:
            raise ValueError("top must be positive")
        self.every = int(every)
        #: Hotspot rows kept per capture — the capacity bound on everything
        #: this sampler retains (the raw profile dies with the request).
        self.top = int(top)
        self._lock = threading.Lock()
        self._count = 0

    def should_capture(self) -> bool:
        with self._lock:
            self._count += 1
            return (self._count - 1) % self.every == 0

    def hotspots(self, profile: cProfile.Profile) -> dict[str, Any]:
        """The top-N hotspot table of one finished capture (JSON data)."""
        stats = pstats.Stats(profile)
        rows = []
        for (filename, lineno, funcname), entry in stats.stats.items():
            _, ncalls, tottime, cumtime, _ = entry
            rows.append({
                "function": funcname,
                "file": f"{os.path.basename(filename)}:{lineno}",
                "calls": int(ncalls),
                "tottime_ms": round(tottime * 1000.0, 3),
                "cumtime_ms": round(cumtime * 1000.0, 3),
            })
        rows.sort(key=lambda row: (-row["tottime_ms"], row["function"]))
        return {"engine": "cProfile", "sort": "tottime",
                "top": rows[:self.top]}
