"""Request tracing: nested spans with monotonic durations and attributes.

One :class:`Tracer` records one request.  The facade
(:func:`repro.api.tuner.tune_in_context`) creates it, activates it on a
``contextvars`` context variable and opens the root ``tune`` span; every
deeper layer — advisors, the branch-and-bound solver, the shard executor —
calls the module-level :func:`span` helper, which nests under whatever span
is currently open and costs a single contextvar read (returning the shared
no-op span) when nothing is recording.  The layers therefore carry no
tracer parameters, and code running outside a traced request stays exactly
as fast as before.

Trace identity and propagation:

* every trace has a ``trace_id`` (a 32-hex-char random id unless supplied);
* :func:`trace_context` plants a *pending* trace id that the next tracer
  created on the same thread/context inherits — the HTTP server sets it
  from the ``X-Repro-Trace-Id`` request header, and the client SDK sends
  that header from the same pending id (or a fresh one), which is how one
  id spans client → server → result;
* shard jobs carry the trace id into worker processes
  (:mod:`repro.scale.executor`); the worker builds its own tracer under the
  same id, and the finished worker span tree is pickled back and grafted
  into the parent trace with :func:`adopt`.

The exported payload (:meth:`Tracer.export`) is plain JSON data::

    {"trace_id": "…", "root": {"name": "tune", "duration_ms": 12.3,
                               "attrs": {…}, "children": […]}}

Durations are ``time.perf_counter`` deltas — monotonic, never wall-clock —
so they are timing-like jitter and are stripped from result fingerprints
along with the rest of the ``trace`` payload.
"""

from __future__ import annotations

import contextlib
import logging
import time
import tracemalloc
import uuid
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "activate", "adopt", "current_span",
           "current_tracer", "current_trace_id", "new_trace_id",
           "pending_trace_id", "span", "trace_context"]

#: The tracer recording the current request (None = tracing off).
_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro_tracer",
                                                  default=None)
#: A trace id planted ahead of tracer creation (header/client propagation).
_PENDING: ContextVar[str | None] = ContextVar("repro_pending_trace_id",
                                              default=None)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


class Span:
    """One named, timed tree node of a trace.

    ``attrs`` hold whatever the instrumented layer reports (node counts,
    shard ids, retry attempts, …); :meth:`set` adds more after the span
    opened — typically outcomes known only once the stage finished.

    Resource accounting (PR 10): every span records the CPU seconds its
    thread spent inside it (``attrs["cpu_ms"]``, via ``time.thread_time`` —
    wall minus CPU is wait time, which is how a reader tells a contended
    span from a busy one).  With ``track_memory`` on *and* ``tracemalloc``
    tracing, the span also records the process peak-allocation delta over
    its own start (``attrs["mem_peak_kb"]``).
    """

    __slots__ = ("name", "attrs", "children", "_started", "_cpu_started",
                 "_mem_started", "duration_ms")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None,
                 track_memory: bool = False):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs or {})
        #: Finished child spans (Span objects) or adopted payload dicts.
        self.children: list[Any] = []
        self._started = time.perf_counter()
        self._cpu_started = time.thread_time()
        self._mem_started = (tracemalloc.get_traced_memory()[0]
                             if track_memory and tracemalloc.is_tracing()
                             else None)
        self.duration_ms: float = 0.0

    @property
    def is_recording(self) -> bool:
        return True

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def finish(self) -> None:
        self.duration_ms = (time.perf_counter() - self._started) * 1000.0
        cpu_ms = (time.thread_time() - self._cpu_started) * 1000.0
        self.attrs["cpu_ms"] = round(cpu_ms, 3)
        if self._mem_started is not None and tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1]
            self.attrs["mem_peak_kb"] = round(
                max(0.0, peak - self._mem_started) / 1024.0, 1)

    def to_payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "attrs": dict(self.attrs),
            "children": [child.to_payload() if isinstance(child, Span)
                         else child for child in self.children],
        }


class _NoopSpan:
    """The shared do-nothing span handed out when no tracer is active."""

    __slots__ = ()

    @property
    def is_recording(self) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records one request's span tree.

    A tracer is request-scoped and driven by one thread at a time (the
    service serializes each request's pipeline), so the open-span stack
    needs no locking.  Shard worker processes get their *own* tracer under
    the same trace id; their exported trees are grafted back with
    :func:`adopt`.
    """

    def __init__(self, trace_id: str | None = None,
                 track_memory: bool = False):
        self.trace_id = trace_id or pending_trace_id() or new_trace_id()
        #: Record per-span tracemalloc peak deltas (requires tracemalloc to
        #: be tracing; see ``repro.obs.profile.ensure_memory_tracking``).
        self.track_memory = bool(track_memory)
        self.root: Span | None = None
        self._stack: list[Span] = []

    # ------------------------------------------------------------------- spans
    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or the root)."""
        node = Span(name, attrs, track_memory=self.track_memory)
        if self._stack:
            self._stack[-1].children.append(node)
        elif self.root is None:
            self.root = node
        else:
            # A second top-level span (the tracer is being reused): keep one
            # tree by parenting it under the existing root.
            self.root.children.append(node)
        self._stack.append(node)
        _log_span_event("span_start", self.trace_id, node)
        try:
            yield node
        finally:
            node.finish()
            self._stack.pop()
            _log_span_event("span_end", self.trace_id, node)

    def adopt(self, payload: dict[str, Any] | None) -> None:
        """Graft an exported (sub)trace under the innermost open span.

        Worker processes export their span tree as a payload dict
        (:meth:`export`); the parent passes either the whole export or just
        its ``root`` node — both are accepted, and the worker's tree becomes
        a child of the span currently open here.
        """
        if not payload:
            return
        node = payload.get("root", payload)
        if not isinstance(node, dict) or "name" not in node:
            return
        target = self.current or self.root
        if target is not None:
            target.children.append(node)

    # ------------------------------------------------------------------ export
    def export(self) -> dict[str, Any] | None:
        """The finished (or partial) span tree as plain JSON data."""
        if self.root is None:
            return None
        if self._stack:
            # Partial export (a failed pipeline): close what is still open
            # so durations are meaningful in the logged trace.
            for node in self._stack:
                node.finish()
        return {"trace_id": self.trace_id, "root": self.root.to_payload()}


# ----------------------------------------------------------------- ambient API
@contextlib.contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the ambient tracer for the duration of the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def current_tracer() -> Tracer | None:
    return _ACTIVE.get()


def current_span() -> Span | None:
    tracer = _ACTIVE.get()
    return tracer.current if tracer is not None else None


def current_trace_id() -> str | None:
    """The trace id of the request currently recording (None when idle)."""
    tracer = _ACTIVE.get()
    return tracer.trace_id if tracer is not None else None


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Any]:
    """Open a span on the ambient tracer; a shared no-op when tracing is off.

    The instrumentation call sites throughout the stack all go through
    here, so a process that never activates a tracer pays one contextvar
    read per would-be span and nothing else.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        yield NOOP_SPAN
        return
    with tracer.span(name, **attrs) as node:
        yield node


def adopt(payload: dict[str, Any] | None) -> None:
    """Graft an exported worker span tree into the ambient trace (no-op
    when tracing is off or the payload is empty)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.adopt(payload)


# --------------------------------------------------------------- id propagation
@contextlib.contextmanager
def trace_context(trace_id: str | None = None) -> Iterator[str]:
    """Plant a pending trace id for the duration of the block.

    The next :class:`Tracer` created in this context (and the client SDK's
    outgoing ``X-Repro-Trace-Id`` header) picks it up, which is how the
    HTTP server threads a client-supplied id into the pipeline and how a
    caller pins a known id for end-to-end correlation tests.
    """
    chosen = trace_id or new_trace_id()
    token = _PENDING.set(chosen)
    try:
        yield chosen
    finally:
        _PENDING.reset(token)


def pending_trace_id() -> str | None:
    return _PENDING.get()


# -------------------------------------------------------------------- logging
def _log_span_event(event: str, trace_id: str, node: Span) -> None:
    """Span start/end at DEBUG — guarded so tracing stays cheap by default."""
    from repro.obs.log import logger, log_event

    if not logger.isEnabledFor(logging.DEBUG):
        return
    fields: dict[str, Any] = {"span": node.name, "trace_id": trace_id}
    if event == "span_end":
        fields["duration_ms"] = round(node.duration_ms, 3)
    log_event(logging.DEBUG, event, **fields)
