"""A labelled metrics registry with Prometheus text exposition (stdlib-only).

One :class:`MetricsRegistry` holds counter/gauge/histogram *families*; a
family is keyed by metric name, carries fixed label names, and stores one
sample per label-value combination.  All mutation and reading happens under
one registry lock, so :meth:`MetricsRegistry.snapshot` is an atomic view of
every counter at one instant — which is exactly what
``TuningService.stats()`` needs to never serve torn reads — and
:meth:`MetricsRegistry.render` emits the standard Prometheus text format
(``# HELP`` / ``# TYPE`` / sample lines) for ``GET /v1/metrics``.

Like the tracer, the registry is ambient: the facade activates the owning
:class:`~repro.api.tuner.Tuner`'s registry around each request
(:func:`use_registry`), deep layers record through :func:`active_registry`,
and code running outside any request falls back to the process-wide
:data:`DEFAULT_REGISTRY`.  Metric families are get-or-create, so call sites
simply declare name/help/labels inline; :func:`declare_standard_metrics`
pre-registers the stack's standard families so ``/v1/metrics`` exposes them
(as empty families) even before the first request.

Label cardinality contract (enforced by the ``metric-label-cardinality``
reprolint rule): every label value must come from a *bounded* set, because
each distinct value materializes one sample series per family.  The bounded
domains and where each is pinned:

* ``advisor`` — names in the advisor registry (``repro.api.registry``).
* ``site`` — ``FAULT_SITES`` in ``repro.reliability.faults`` (plus the
  literal ``http_client``).
* ``tier`` / ``solve_tier`` — the anytime solve tiers, validated on
  ``SolveBudget`` construction.
* ``endpoint`` — route *patterns* from ``repro.server.app._endpoint_pattern``
  (never raw request paths).
* ``method`` / ``status`` — HTTP verbs and status codes.
* ``event`` / ``cache`` / ``outcome`` / ``kind`` / ``stage`` — short literal
  event names at the call site.
* ``lock`` — :class:`~repro.obs.profile.InstrumentedLock` names, fixed at
  construction (``schema_context``, ``inum_metrics``).  Lock-wait histograms
  count *every* acquisition — re-entrant and uncontended acquires record a
  zero wait, so ``_count`` doubles as the acquisition rate.

Histograms optionally carry one *exemplar* per label set — the trace id of
the slowest observation so far (``observe(value, exemplar=trace_id)``).
Exemplars surface only through :meth:`MetricsRegistry.snapshot` (and from
there ``/v1/stats``); :meth:`MetricsRegistry.render` stays plain Prometheus
text exposition, which the CI grammar check pins.

Raw request data — statement names, schema names, paths, anything
interpolated into a string — must never become a label value; put it in a
log event or a trace span attribute instead.
"""

from __future__ import annotations

import math
import threading
from contextvars import ContextVar
from typing import Any, Iterator

import contextlib

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_REGISTRY", "METRICS_CONTENT_TYPE", "active_registry",
           "declare_standard_metrics", "histogram_quantiles", "use_registry"]

#: Content type of the Prometheus text exposition format, as scrapers expect.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets for second-valued latencies.
SECONDS_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0)
#: Buckets for solver node counts.
NODES_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0)
#: Buckets for relative optimality gaps.
GAP_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)
#: Finer sub-second buckets for lock/queue wait times — contention waits are
#: usually far below request latency, so SECONDS_BUCKETS would flatten them.
WAIT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                1.0, 2.5, 5.0, 10.0)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_text(names: tuple[str, ...], values: tuple[str, ...],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(names, values)]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Common family machinery: fixed label names, per-labelset samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...], lock: threading.Lock):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._samples: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"Metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def total(self) -> float:
        """Sum over every label combination (the registry-view rollup)."""
        with self._lock:
            return float(sum(self._samples.values()))

    def _render(self) -> list[str]:
        return [f"{self.name}{_label_text(self.labelnames, key)} "
                f"{_format_value(value)}"
                for key, value in sorted(self._samples.items())]


class Gauge(_Metric):
    """A value that can go up and down per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    _render = Counter._render


class Histogram(_Metric):
    """Cumulative-bucket histogram per label set (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: tuple[str, ...], lock: threading.Lock,
                 buckets: tuple[float, ...] = SECONDS_BUCKETS):
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        if not self.buckets:
            raise ValueError("histograms need at least one bucket bound")

    def observe(self, value: float, exemplar: str | None = None,
                **labels: Any) -> None:
        """Record one observation; ``exemplar`` optionally attaches a trace
        id, and the slowest observation's exemplar wins (the one a reader of
        the latency histogram wants to drill into)."""
        key = self._key(labels)
        value = float(value)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {"counts": [0] * (len(self.buckets) + 1),
                          "sum": 0.0, "count": 0}
                self._samples[key] = sample
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    sample["counts"][position] += 1
                    break
            else:
                sample["counts"][-1] += 1
            sample["sum"] += value
            sample["count"] += 1
            if exemplar is not None:
                held = sample.get("exemplar")
                if held is None or value >= held["value"]:
                    sample["exemplar"] = {"trace_id": str(exemplar),
                                          "value": value}

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            return 0 if sample is None else int(sample["count"])

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            sample = self._samples.get(key)
            return 0.0 if sample is None else float(sample["sum"])

    def _render(self) -> list[str]:
        lines: list[str] = []
        for key, sample in sorted(self._samples.items()):
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, sample["counts"]):
                cumulative += bucket_count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_text(self.labelnames, key, (('le', _format_value(bound)),))}"
                    f" {cumulative}")
            cumulative += sample["counts"][-1]
            lines.append(
                f"{self.name}_bucket"
                f"{_label_text(self.labelnames, key, (('le', '+Inf'),))}"
                f" {cumulative}")
            lines.append(f"{self.name}_sum{_label_text(self.labelnames, key)} "
                         f"{_format_value(sample['sum'])}")
            lines.append(f"{self.name}_count"
                         f"{_label_text(self.labelnames, key)} "
                         f"{sample['count']}")
        return lines


class MetricsRegistry:
    """Get-or-create metric families behind one lock.

    The single lock makes every read — including the full
    :meth:`snapshot` / :meth:`render` — atomic against concurrent updates
    from serving threads, at the cost of one uncontended acquire per metric
    operation (cheap next to any optimizer call).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------ registration
    def counter(self, name: str, help_text: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text,
                                   tuple(labelnames))

    def gauge(self, name: str, help_text: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, tuple(labelnames))

    def histogram(self, name: str, help_text: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = SECONDS_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   tuple(labelnames), buckets=buckets)

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: tuple[str, ...], **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, labelnames, self._lock, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"Metric {name!r} is already registered as a "
                f"{metric.kind}, not a {cls.kind}")
        if metric.labelnames != labelnames:
            raise ValueError(
                f"Metric {name!r} is already registered with labels "
                f"{metric.labelnames}, not {labelnames}")
        return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    # ---------------------------------------------------------------- reading
    def snapshot(self) -> dict[str, dict[tuple[str, ...], Any]]:
        """Every sample of every family, read under one lock acquisition.

        Histograms snapshot as ``{"sum": float, "count": int, "buckets":
        [[bound, cumulative_count], ...]}`` per label set — the buckets are
        *cumulative* (Prometheus ``le`` semantics) and always end with the
        ``[inf, count]`` overflow entry, so percentiles are computable from
        one atomic snapshot (:func:`histogram_quantiles`).  A retained
        exemplar rides along as ``{"trace_id", "value"}``.  Counters and
        gauges snapshot as plain floats.
        """
        with self._lock:
            out: dict[str, dict[tuple[str, ...], Any]] = {}
            for name, metric in self._metrics.items():
                if isinstance(metric, Histogram):
                    out[name] = {key: self._histogram_sample(metric, sample)
                                 for key, sample in metric._samples.items()}
                else:
                    out[name] = dict(metric._samples)
            return out

    @staticmethod
    def _histogram_sample(metric: "Histogram",
                          sample: dict[str, Any]) -> dict[str, Any]:
        buckets: list[list[float]] = []
        cumulative = 0
        for bound, bucket_count in zip(metric.buckets, sample["counts"]):
            cumulative += bucket_count
            buckets.append([bound, cumulative])
        buckets.append([math.inf, sample["count"]])
        view: dict[str, Any] = {"sum": sample["sum"],
                                "count": sample["count"],
                                "buckets": buckets}
        exemplar = sample.get("exemplar")
        if exemplar is not None:
            view["exemplar"] = dict(exemplar)
        return view

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._metrics.items())
            lines: list[str] = []
            for name, metric in families:
                help_text = metric.help or name
                lines.append(f"# HELP {name} "
                             + help_text.replace("\\", "\\\\")
                                        .replace("\n", "\\n"))
                lines.append(f"# TYPE {name} {metric.kind}")
                lines.extend(metric._render())
            return "\n".join(lines) + "\n"


def histogram_quantiles(sample: dict[str, Any],
                        quantiles: tuple[float, ...]) -> list[float | None]:
    """Quantile estimates from one snapshot histogram sample.

    Standard Prometheus ``histogram_quantile`` semantics: linear
    interpolation inside the bucket containing the target rank, with the
    first bucket's lower edge at 0.  A rank landing in the ``+Inf`` overflow
    bucket answers the highest finite bound (the estimate is then a floor,
    exactly as Prometheus reports it).  Returns ``None`` per quantile when
    the sample holds no observations.
    """
    buckets = sample.get("buckets") or []
    count = int(sample.get("count", 0))
    results: list[float | None] = []
    for quantile in quantiles:
        if count <= 0 or not buckets:
            results.append(None)
            continue
        rank = max(0.0, min(1.0, float(quantile))) * count
        previous_bound, previous_cumulative = 0.0, 0
        estimate: float | None = None
        for bound, cumulative in buckets:
            if cumulative >= rank and cumulative > previous_cumulative:
                if math.isinf(bound):
                    estimate = previous_bound
                else:
                    fraction = ((rank - previous_cumulative)
                                / (cumulative - previous_cumulative))
                    estimate = (previous_bound
                                + (bound - previous_bound) * fraction)
                break
            previous_bound, previous_cumulative = bound, cumulative
        if estimate is None:  # rank == 0 in a non-empty sample
            estimate = 0.0
        results.append(estimate)
    return results


#: Fallback registry for code running outside any request/service scope.
DEFAULT_REGISTRY = MetricsRegistry()

_ACTIVE_REGISTRY: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics_registry", default=None)


def active_registry() -> MetricsRegistry:
    """The ambient registry (the owning Tuner's during a request)."""
    registry = _ACTIVE_REGISTRY.get()
    return registry if registry is not None else DEFAULT_REGISTRY


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the ambient registry for the duration of the block."""
    token = _ACTIVE_REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_REGISTRY.reset(token)


# --------------------------------------------------------- standard families
def declare_standard_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Pre-register the stack's standard metric families.

    Families only exist once first touched; declaring them up front makes
    ``GET /v1/metrics`` expose the full schema (empty families render as
    ``# HELP`` / ``# TYPE`` headers) from the moment the server starts, so
    scrapers and dashboards never see a shifting metric set.
    """
    registry.counter("repro_requests_total",
                     "Tuning requests served through the facade",
                     ("advisor", "tier", "status"))
    registry.histogram("repro_request_seconds",
                       "End-to-end facade latency per tuning request",
                       ("advisor",))
    registry.counter("repro_result_retries_total",
                     "Reliability-layer retries reported by served results")
    registry.counter("repro_namespaced_requests_total",
                     "Requests whose statements were auto-namespaced")
    registry.counter("repro_sessions_reaped_total",
                     "Interactive sessions reaped by idle TTL")
    registry.counter("repro_overload_rejected_total",
                     "Requests rejected by admission control (429)")
    registry.counter("repro_degraded_total",
                     "Served results flagged degraded (lost shards)")
    registry.gauge("repro_pending_requests",
                   "Requests admitted but not yet finished")
    registry.counter("repro_solver_solves_total",
                     "Branch-and-bound solves by terminal status",
                     ("status",))
    registry.histogram("repro_solver_nodes",
                       "Nodes explored per branch-and-bound solve",
                       buckets=NODES_BUCKETS)
    registry.histogram("repro_solver_gap",
                       "Relative optimality gap per solve",
                       buckets=GAP_BUCKETS)
    registry.histogram("repro_lock_wait_seconds",
                       "Seconds callers waited to acquire a named lock",
                       ("lock",), buckets=WAIT_BUCKETS)
    registry.histogram("repro_queue_wait_seconds",
                       "Seconds requests waited in the service pool queue",
                       buckets=WAIT_BUCKETS)
    registry.counter("repro_cache_events_total",
                     "Hits and misses of the tuning-stack caches",
                     ("cache", "event"))
    registry.counter("repro_retries_total",
                     "Retries taken by the reliability layer, by site",
                     ("site",))
    registry.counter("repro_faults_injected_total",
                     "Fault-plan injections observed in this process",
                     ("site",))
    registry.counter("repro_http_requests_total",
                     "HTTP requests served by the tuning server",
                     ("endpoint", "method", "status"))
    registry.histogram("repro_http_request_seconds",
                       "HTTP dispatch latency by endpoint",
                       ("endpoint",))
    return registry
