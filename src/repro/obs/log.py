"""Structured JSON logging for the tuning stack.

One logger tree rooted at ``repro`` emits JSON lines to stderr::

    {"ts": "2026-08-08T12:00:00.123+00:00", "level": "WARNING",
     "logger": "repro.scale", "event": "matrix_build_degraded",
     "trace_id": "4f…", "shells": 12}

* :func:`log_event` is the one emission API: an event name plus arbitrary
  JSON-serializable fields; the ambient trace id
  (:func:`repro.obs.trace.current_trace_id`) is attached automatically, so
  every warning a degradation path emits correlates with the request trace.
* :func:`configure` installs the stderr handler and sets the level —
  explicitly (the server's ``--log-level`` flag / ``log_level=`` knobs) or
  from the ``REPRO_LOG_LEVEL`` environment variable; the default is
  ``WARNING``, so routine traffic stays silent and only degradations and
  failures surface.  Configuration is lazy and idempotent: the first
  emission configures from the environment when nothing did before.
"""

from __future__ import annotations

import datetime
import json
import logging
import os
import sys
from typing import Any

__all__ = ["configure", "log_event", "logger"]

#: Environment knob for the root level (name or number; default WARNING).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: The root of the package's logger tree.
logger = logging.getLogger("repro")

_configured = False


class JsonFormatter(logging.Formatter):
    """Render one record as a single JSON line.

    Structured fields travel in ``record.repro_fields`` (set by
    :func:`log_event`); plain stdlib ``logger.warning(...)`` calls through
    the same tree still come out as valid JSON with their formatted message
    under ``"message"``.
    """

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc).isoformat(
                timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
        }
        fields = getattr(record, "repro_fields", None)
        if fields:
            entry.update(fields)
        else:
            entry["message"] = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            entry.setdefault("error", repr(record.exc_info[1]))
        try:
            return json.dumps(entry, default=repr)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return json.dumps({"level": record.levelname,
                               "logger": record.name,
                               "message": record.getMessage()})


def _level_from(value: Any) -> int:
    if value is None:
        return logging.WARNING
    if isinstance(value, int):
        return value
    text = str(value).strip().upper()
    if text.isdigit():
        return int(text)
    level = logging.getLevelName(text)
    return level if isinstance(level, int) else logging.WARNING


def configure(level: Any = None, stream: Any = None) -> logging.Logger:
    """Install the JSON stderr handler and set the level (idempotent).

    ``level`` accepts a name (``"debug"``), a number, or ``None`` — which
    reads :data:`LOG_LEVEL_ENV` and falls back to ``WARNING``.  Calling
    again only adjusts the level (and the stream when given), never stacks
    a second handler.
    """
    global _configured
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV)
    resolved = _level_from(level)
    handler = next((h for h in logger.handlers
                    if getattr(h, "_repro_json", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(JsonFormatter())
        handler._repro_json = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
        logger.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    logger.setLevel(resolved)
    _configured = True
    return logger


def log_event(level: int, event: str, *, logger_name: str = "repro",
              **fields: Any) -> None:
    """Emit one structured event with automatic trace-id correlation.

    ``fields`` must be JSON-representable (anything else is ``repr``-ed).
    A ``trace_id`` field is filled in from the ambient tracer unless the
    caller supplied one explicitly.
    """
    if not _configured:
        configure()
    target = (logger if logger_name == "repro"
              else logging.getLogger(logger_name))
    if not target.isEnabledFor(level):
        return
    if "trace_id" not in fields:
        from repro.obs.trace import current_trace_id

        trace_id = current_trace_id()
        if trace_id is not None:
            fields["trace_id"] = trace_id
    target.log(level, event, extra={"repro_fields":
                                    {"event": event, **fields}})
