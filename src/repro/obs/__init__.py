"""One observability layer for the whole tuning stack (PR 8).

Three pillars, all stdlib-only and all ambient (no signature churn through
the advisor/solver layers):

* :mod:`repro.obs.trace` — a :class:`Tracer` producing nested spans with
  monotonic durations and attributes.  The active tracer travels via a
  ``contextvars`` context variable, so deep layers call the module-level
  :func:`~repro.obs.trace.span` helper and no-op (one contextvar read) when
  nothing is recording.  A per-request ``trace_id`` propagates over the wire
  in the ``X-Repro-Trace-Id`` header and into shard worker processes; the
  finished span tree is exported in ``TuningResult.extras["trace"]`` and —
  like timings — excluded from ``fingerprint()``.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labelled
  counters, gauges and histograms with Prometheus text exposition
  (``GET /v1/metrics``).  Each :class:`~repro.api.tuner.Tuner` owns one
  registry; it is activated alongside the tracer so solver/cache/executor
  layers record into the registry of whichever request is running.
* :mod:`repro.obs.log` — structured JSON logging with trace-id correlation
  and a ``REPRO_LOG_LEVEL`` / ``log_level=`` knob.  The silent
  except-and-degrade paths of the scale executor and the HTTP server now
  emit warnings through it, so degradations are never invisible.
"""

from repro.obs.log import configure as configure_logging
from repro.obs.log import log_event
from repro.obs.metrics import MetricsRegistry, active_registry, use_registry
from repro.obs.trace import (
    Tracer,
    activate,
    adopt,
    current_trace_id,
    new_trace_id,
    span,
    trace_context,
)

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "activate",
    "active_registry",
    "adopt",
    "configure_logging",
    "current_trace_id",
    "log_event",
    "new_trace_id",
    "span",
    "trace_context",
    "use_registry",
]
