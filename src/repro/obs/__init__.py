"""One observability layer for the whole tuning stack (PR 8).

Three pillars, all stdlib-only and all ambient (no signature churn through
the advisor/solver layers):

* :mod:`repro.obs.trace` — a :class:`Tracer` producing nested spans with
  monotonic durations and attributes.  The active tracer travels via a
  ``contextvars`` context variable, so deep layers call the module-level
  :func:`~repro.obs.trace.span` helper and no-op (one contextvar read) when
  nothing is recording.  A per-request ``trace_id`` propagates over the wire
  in the ``X-Repro-Trace-Id`` header and into shard worker processes; the
  finished span tree is exported in ``TuningResult.extras["trace"]`` and —
  like timings — excluded from ``fingerprint()``.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labelled
  counters, gauges and histograms with Prometheus text exposition
  (``GET /v1/metrics``).  Each :class:`~repro.api.tuner.Tuner` owns one
  registry; it is activated alongside the tracer so solver/cache/executor
  layers record into the registry of whichever request is running.
* :mod:`repro.obs.log` — structured JSON logging with trace-id correlation
  and a ``REPRO_LOG_LEVEL`` / ``log_level=`` knob.  The silent
  except-and-degrade paths of the scale executor and the HTTP server now
  emit warnings through it, so degradations are never invisible.

Performance introspection (PR 10) builds on those pillars:

* :mod:`repro.obs.profile` — :class:`InstrumentedLock` wait-time accounting
  (``repro_lock_wait_seconds{lock}``), pool queue-wait accounting
  (``repro_queue_wait_seconds``), per-request CPU/peak-memory attributes on
  every span, and opt-in sampled ``cProfile`` capture
  (``Tuner(profile_every=N)``) whose hotspot table rides
  ``extras["profile"]`` — volatile and fingerprint-excluded, like the trace.
* :mod:`repro.obs.store` — :class:`TraceStore`, a bounded thread-safe ring
  of recent completed traces with slow-request pinning
  (``slow_threshold_ms``), served at ``GET /v1/traces`` and
  ``GET /v1/traces/{id}`` and correlated to the metrics through exemplar
  trace ids on the latency histograms.
* :mod:`repro.obs.report` — ``python -m repro.obs.report`` renders a stored
  or exported trace as a flame-style span/hotspot summary.
* :func:`repro.obs.metrics.histogram_quantiles` — streaming p50/p95/p99
  from one atomic histogram snapshot; the service surfaces per-advisor
  latency SLOs in ``/v1/stats`` with it.

Typical usage::

    tuner = Tuner(trace_store_size=128, slow_threshold_ms=250.0,
                  profile_every=20)
    result = tuner.tune(request)          # result.extras may carry "profile"
    tuner.trace_store.summaries(5)        # the last five requests
"""

from repro.obs.log import configure as configure_logging
from repro.obs.log import log_event
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    histogram_quantiles,
    use_registry,
)
from repro.obs.profile import (
    InstrumentedLock,
    ProfileSampler,
    drain_pending_waits,
    ensure_memory_tracking,
    note_queue_wait,
)
from repro.obs.store import TraceStore
from repro.obs.trace import (
    Tracer,
    activate,
    adopt,
    current_trace_id,
    new_trace_id,
    span,
    trace_context,
)

__all__ = [
    "InstrumentedLock",
    "MetricsRegistry",
    "ProfileSampler",
    "TraceStore",
    "Tracer",
    "activate",
    "active_registry",
    "adopt",
    "configure_logging",
    "current_trace_id",
    "drain_pending_waits",
    "ensure_memory_tracking",
    "histogram_quantiles",
    "log_event",
    "new_trace_id",
    "note_queue_wait",
    "span",
    "trace_context",
    "use_registry",
]
