"""A bounded, queryable in-server store of recently completed traces.

PR 8 exported each request's span tree in ``TuningResult.extras["trace"]``
and then forgot it — a trace was only observable by whoever made the
request.  :class:`TraceStore` keeps the last ``capacity`` completed traces
in a thread-safe ring buffer so operators can query them after the fact
(``GET /v1/traces`` / ``GET /v1/traces/{id}``), correlated to the metrics
via the exemplar trace ids the latency histograms retain.

Slow-request capture: entries whose ``duration_ms`` reaches
``slow_threshold_ms`` are *additionally* pinned in a separate (also
bounded) ring, so the outliers worth debugging survive even when a burst of
fast requests has long since rotated them out of the recent ring.

Everything stored is plain JSON data (the exported span payload, the
optional hotspot table); the store never holds live objects, so a retained
trace cannot pin a schema context or a result alive.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

__all__ = ["TraceStore"]

#: Fields of a stored entry surfaced by the ``/v1/traces`` listing (the full
#: span tree and profile only travel on the per-id endpoint).
_SUMMARY_FIELDS = ("trace_id", "advisor", "status", "duration_ms",
                   "request_id", "slow", "seq")


class TraceStore:
    """Thread-safe ring buffer of completed request traces.

    Args:
        capacity: Entries retained in the recent ring (>= 1).  ``Tuner``
            treats a configured size of 0 as "no store" and passes ``None``
            instead of constructing one.
        slow_threshold_ms: Entries at least this slow are pinned in the
            slow ring as well; ``None`` disables slow capture.
        slow_capacity: Bound of the slow ring (>= 1).
    """

    def __init__(self, capacity: int = 128,
                 slow_threshold_ms: float | None = None,
                 slow_capacity: int = 32):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if slow_capacity < 1:
            raise ValueError("slow_capacity must be >= 1")
        if slow_threshold_ms is not None and slow_threshold_ms < 0:
            raise ValueError("slow_threshold_ms must be non-negative (or None)")
        self.capacity = int(capacity)
        self.slow_threshold_ms = slow_threshold_ms
        self.slow_capacity = int(slow_capacity)
        self._lock = threading.Lock()
        #: trace_id -> entry, oldest first (rings via OrderedDict rotation).
        self._recent: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._slow: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self._seq = 0
        self._evicted = 0

    # ----------------------------------------------------------------- writing
    def record(self, trace: dict[str, Any] | None, *,
               advisor: str | None = None, status: str | None = None,
               duration_ms: float | None = None,
               request_id: str | None = None,
               profile: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """Store one completed (or failed-partial) trace; returns the entry.

        ``duration_ms`` defaults to the root span's duration.  Re-recording
        a trace id overwrites the previous entry (tests pin one id across
        requests; latest wins).
        """
        if not trace or "trace_id" not in trace:
            return None
        trace_id = str(trace["trace_id"])
        if duration_ms is None:
            root = trace.get("root") or {}
            duration_ms = root.get("duration_ms")
        slow = (self.slow_threshold_ms is not None
                and duration_ms is not None
                and duration_ms >= self.slow_threshold_ms)
        with self._lock:
            self._seq += 1
            entry: dict[str, Any] = {
                "trace_id": trace_id,
                "advisor": advisor,
                "status": status,
                "duration_ms": (None if duration_ms is None
                                else round(float(duration_ms), 3)),
                "request_id": request_id,
                "slow": slow,
                "seq": self._seq,
                "trace": trace,
            }
            if profile is not None:
                entry["profile"] = profile
            self._recent.pop(trace_id, None)
            self._recent[trace_id] = entry
            while len(self._recent) > self.capacity:
                self._recent.popitem(last=False)
                self._evicted += 1
            if slow:
                self._slow.pop(trace_id, None)
                self._slow[trace_id] = entry
                while len(self._slow) > self.slow_capacity:
                    self._slow.popitem(last=False)
            return entry

    # ----------------------------------------------------------------- reading
    def get(self, trace_id: str) -> dict[str, Any] | None:
        """The stored entry of one trace id (recent or slow-pinned)."""
        with self._lock:
            entry = self._recent.get(trace_id)
            if entry is None:
                entry = self._slow.get(trace_id)
            return entry

    def summaries(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Newest-first summary rows across both rings (deduplicated)."""
        with self._lock:
            merged: dict[str, dict[str, Any]] = {}
            for entry in self._recent.values():
                merged[entry["trace_id"]] = entry
            for entry in self._slow.values():
                merged.setdefault(entry["trace_id"], entry)
            rows = sorted(merged.values(), key=lambda e: -e["seq"])
        if limit is not None:
            rows = rows[:max(0, int(limit))]
        return [{field: entry.get(field) for field in _SUMMARY_FIELDS}
                for entry in rows]

    def __len__(self) -> int:
        with self._lock:
            ids = set(self._recent) | set(self._slow)
            return len(ids)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "size": len(set(self._recent) | set(self._slow)),
                "capacity": self.capacity,
                "slow_threshold_ms": self.slow_threshold_ms,
                "slow_retained": len(self._slow),
                "slow_capacity": self.slow_capacity,
                "recorded": self._seq,
                "evicted": self._evicted,
            }
