"""Join enumeration and plan finishing (aggregation, ordering).

Given one costed :class:`~repro.optimizer.plan.ScanNode` per referenced table,
the :class:`PlanBuilder` enumerates join orders with a dynamic program over
connected table subsets, choosing between hash joins, merge joins (adding
explicit sorts when an input is not suitably ordered) and nested loops for
tiny inputs.  It then adds grouping/aggregation and ORDER BY handling on top.

The builder is deliberately order-aware: providing a sorted access path for a
join, group-by or order-by column removes sort work from the *internal* plan,
which is exactly the effect INUM's interesting-order templates capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import OptimizerError
from repro.optimizer.cost_model import CostModel
from repro.optimizer.plan import (
    AggregateNode,
    JoinAlgorithm,
    JoinNode,
    Plan,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.workload.predicates import ColumnRef, JoinPredicate
from repro.workload.query import Query

__all__ = ["PlanBuilder"]

#: Inputs at or below this cardinality may use a naive nested-loop join.
_NESTED_LOOP_THRESHOLD = 64.0


@dataclass
class _SubPlan:
    """A DP entry: a plan covering a set of tables plus its output width."""

    node: PlanNode
    width: float

    @property
    def cost(self) -> float:
        return self.node.total_cost()

    @property
    def rows(self) -> float:
        return self.node.rows

    @property
    def order(self) -> ColumnRef | None:
        return self.node.output_order


class PlanBuilder:
    """Builds a full physical plan from per-table access paths."""

    def __init__(self, cost_model: CostModel, selectivity: SelectivityEstimator):
        self._cost_model = cost_model
        self._selectivity = selectivity

    # -------------------------------------------------------------------- public
    def build(self, query: Query, scans: Mapping[str, ScanNode],
              widths: Mapping[str, float]) -> Plan:
        """Assemble the cheapest plan for ``query`` over the given leaf scans.

        Args:
            query: The statement being planned.
            scans: One scan node per referenced table.
            widths: Output width (bytes) each table contributes to the query.
        """
        missing = [t for t in query.tables if t not in scans]
        if missing:
            raise OptimizerError(f"No access path supplied for tables {missing}")
        joined = self._join_tables(query, scans, widths)
        finished = self._finish(query, joined)
        return Plan(finished.node, query_name=query.name)

    # ------------------------------------------------------------------- joining
    def _join_tables(self, query: Query, scans: Mapping[str, ScanNode],
                     widths: Mapping[str, float]) -> _SubPlan:
        tables = list(query.tables)
        if len(tables) == 1:
            table = tables[0]
            return _SubPlan(scans[table], widths.get(table, 8.0))

        table_bit = {table: 1 << position for position, table in enumerate(tables)}
        best: dict[int, _SubPlan] = {}
        for table in tables:
            best[table_bit[table]] = _SubPlan(scans[table], widths.get(table, 8.0))

        full_mask = (1 << len(tables)) - 1
        # Enumerate subsets in increasing popcount order so both halves of any
        # split are already solved.
        subsets = sorted(range(1, full_mask + 1), key=lambda m: (bin(m).count("1"), m))
        for subset in subsets:
            if subset in best and bin(subset).count("1") == 1:
                continue
            candidate_best: _SubPlan | None = best.get(subset)
            # Enumerate proper splits of `subset` into left/right halves.
            left = (subset - 1) & subset
            while left:
                right = subset ^ left
                if left < right:
                    left = (left - 1) & subset
                    continue
                left_plan = best.get(left)
                right_plan = best.get(right)
                if left_plan is not None and right_plan is not None:
                    connecting = self._connecting_joins(query, tables, table_bit,
                                                        left, right)
                    if connecting:
                        joined = self._best_join(left_plan, right_plan, connecting)
                        if candidate_best is None or joined.cost < candidate_best.cost:
                            candidate_best = joined
                left = (left - 1) & subset
            if candidate_best is not None:
                best[subset] = candidate_best

        if full_mask not in best:
            # The join graph is disconnected: bridge remaining pieces with
            # cartesian-product hash joins (rare, but keeps the builder total).
            return self._bridge_disconnected(best, full_mask)
        return best[full_mask]

    def _connecting_joins(self, query: Query, tables: Sequence[str],
                          table_bit: Mapping[str, int], left_mask: int,
                          right_mask: int) -> tuple[JoinPredicate, ...]:
        connecting = []
        for join in query.joins:
            left_table, right_table = join.tables
            bits = (table_bit[left_table], table_bit[right_table])
            if (bits[0] & left_mask and bits[1] & right_mask) or (
                    bits[1] & left_mask and bits[0] & right_mask):
                connecting.append(join)
        return tuple(connecting)

    def _best_join(self, left: _SubPlan, right: _SubPlan,
                   joins: tuple[JoinPredicate, ...]) -> _SubPlan:
        join_selectivity = 1.0
        for join in joins:
            join_selectivity *= self._selectivity.join_selectivity(join)
        output_rows = max(1.0, left.rows * right.rows * join_selectivity)
        output_width = left.width + right.width
        primary = joins[0]
        left_column = self._column_on_side(primary, left.node)
        right_column = self._column_on_side(primary, right.node)

        candidates = [
            self._hash_join(left, right, output_rows, output_width,
                            left_column, right_column),
            self._merge_join(left, right, output_rows, output_width,
                             left_column, right_column),
        ]
        if min(left.rows, right.rows) <= _NESTED_LOOP_THRESHOLD:
            candidates.append(self._nested_loop(left, right, output_rows,
                                                output_width, left_column,
                                                right_column))
        return min(candidates, key=lambda sub: sub.cost)

    def _column_on_side(self, join: JoinPredicate, side: PlanNode) -> ColumnRef:
        side_tables = {node.table for node in side.walk() if isinstance(node, ScanNode)}
        if join.left.table in side_tables:
            return join.left
        return join.right

    def _hash_join(self, left: _SubPlan, right: _SubPlan, output_rows: float,
                   output_width: float, left_column: ColumnRef,
                   right_column: ColumnRef) -> _SubPlan:
        build, probe = (left, right) if left.rows <= right.rows else (right, left)
        cost = self._cost_model.hash_join_cost(build.rows, probe.rows, build.width,
                                               output_rows)
        node = JoinNode(cost=cost, rows=output_rows, output_order=None,
                        algorithm=JoinAlgorithm.HASH_JOIN,
                        left=left.node, right=right.node,
                        join_column_left=left_column,
                        join_column_right=right_column)
        return _SubPlan(node, output_width)

    def _merge_join(self, left: _SubPlan, right: _SubPlan, output_rows: float,
                    output_width: float, left_column: ColumnRef,
                    right_column: ColumnRef) -> _SubPlan:
        left_input = self._ensure_order(left, left_column)
        right_input = self._ensure_order(right, right_column)
        cost = self._cost_model.merge_join_cost(left_input.rows, right_input.rows,
                                                output_rows)
        node = JoinNode(cost=cost, rows=output_rows, output_order=left_column,
                        algorithm=JoinAlgorithm.MERGE_JOIN,
                        left=left_input.node, right=right_input.node,
                        join_column_left=left_column,
                        join_column_right=right_column)
        return _SubPlan(node, output_width)

    def _nested_loop(self, left: _SubPlan, right: _SubPlan, output_rows: float,
                     output_width: float, left_column: ColumnRef,
                     right_column: ColumnRef) -> _SubPlan:
        outer, inner = (left, right) if left.rows <= right.rows else (right, left)
        cost = self._cost_model.nested_loop_cost(outer.rows, inner.rows, output_rows)
        node = JoinNode(cost=cost, rows=output_rows, output_order=outer.order,
                        algorithm=JoinAlgorithm.NESTED_LOOP,
                        left=left.node, right=right.node,
                        join_column_left=left_column,
                        join_column_right=right_column)
        return _SubPlan(node, output_width)

    def _ensure_order(self, sub: _SubPlan, column: ColumnRef) -> _SubPlan:
        """Add a Sort above ``sub`` unless its output is already ordered by ``column``."""
        if sub.order == column:
            return sub
        sort_cost = self._cost_model.sort_cost(sub.rows, sub.width)
        node = SortNode(cost=sort_cost, rows=sub.rows, output_order=column,
                        child=sub.node, sort_column=column)
        return _SubPlan(node, sub.width)

    def _bridge_disconnected(self, best: Mapping[int, _SubPlan],
                             full_mask: int) -> _SubPlan:
        pieces = []
        covered = 0
        for mask in sorted(best, key=lambda m: -bin(m).count("1")):
            if mask & covered:
                continue
            pieces.append(best[mask])
            covered |= mask
            if covered == full_mask:
                break
        if covered != full_mask or not pieces:
            raise OptimizerError("Could not cover all tables during join enumeration")
        result = pieces[0]
        for piece in pieces[1:]:
            output_rows = max(1.0, result.rows * piece.rows)
            cost = self._cost_model.hash_join_cost(
                min(result.rows, piece.rows), max(result.rows, piece.rows),
                min(result.width, piece.width), output_rows)
            node = JoinNode(cost=cost, rows=output_rows, output_order=None,
                            algorithm=JoinAlgorithm.HASH_JOIN,
                            left=result.node, right=piece.node)
            result = _SubPlan(node, result.width + piece.width)
        return result

    # ----------------------------------------------------------------- finishing
    def _finish(self, query: Query, joined: _SubPlan) -> _SubPlan:
        current = joined
        if query.group_by:
            current = self._aggregate(query, current)
        elif query.aggregates:
            cost = self._cost_model.plain_aggregate_cost(current.rows)
            node = AggregateNode(cost=cost, rows=1.0, output_order=None,
                                 child=current.node, strategy="plain")
            current = _SubPlan(node, current.width)
        if query.order_by:
            current = self._order(query, current)
        return current

    def _aggregate(self, query: Query, current: _SubPlan) -> _SubPlan:
        group_count = self._selectivity.group_count(query, current.rows)
        leading_group = query.group_by[0]
        if current.order == leading_group:
            cost = self._cost_model.stream_aggregate_cost(current.rows, group_count)
            node = AggregateNode(cost=cost, rows=group_count,
                                 output_order=leading_group, child=current.node,
                                 strategy="stream", group_columns=query.group_by)
            return _SubPlan(node, current.width)
        hash_cost = self._cost_model.hash_aggregate_cost(current.rows, group_count)
        sort_cost = self._cost_model.sort_cost(current.rows, current.width)
        stream_cost = self._cost_model.stream_aggregate_cost(current.rows, group_count)
        if hash_cost <= sort_cost + stream_cost:
            node = AggregateNode(cost=hash_cost, rows=group_count, output_order=None,
                                 child=current.node, strategy="hash",
                                 group_columns=query.group_by)
            return _SubPlan(node, current.width)
        sorted_input = self._ensure_order(current, leading_group)
        node = AggregateNode(cost=stream_cost, rows=group_count,
                             output_order=leading_group, child=sorted_input.node,
                             strategy="stream", group_columns=query.group_by)
        return _SubPlan(node, current.width)

    def _order(self, query: Query, current: _SubPlan) -> _SubPlan:
        leading_order = query.order_by[0]
        if current.order == leading_order:
            return current
        return self._ensure_order(current, leading_order)
