"""The what-if optimizer facade.

:class:`WhatIfOptimizer` exposes the interfaces the rest of the system needs:

* ``optimize_atomic(q, A)`` — build the optimal plan for query ``q`` when each
  table is accessed through exactly the index named by the atomic
  configuration ``A`` (or a heap scan for ``I_0``).  Every call counts as one
  "what-if optimization", the unit the paper measures advisors by.
* ``optimize(q, X)`` / ``cost(q, X)`` — the classical what-if call for an
  arbitrary configuration: the minimum over (a bounded set of) atomic
  configurations drawn from ``X``.
* ``statement_cost(q, X)`` — full statement cost, adding index-maintenance
  terms and the base-update term for UPDATE statements (section 2).
* ``update_maintenance_cost(a, q)`` — the ``ucost(a, q)`` term.

All results are cached; the cache plus the call counter make it possible to
reproduce the paper's observation that INUM-based advisors need orders of
magnitude fewer optimizer calls than advisors that treat the optimizer as a
black box.
"""

from __future__ import annotations

import itertools
from typing import Iterable


from repro.catalog.schema import Schema
from repro.exceptions import OptimizerError
from repro.indexes.configuration import AtomicConfiguration, Configuration
from repro.indexes.index import Index
from repro.optimizer.access_paths import AccessPathSelector
from repro.optimizer.cost_model import CostModel
from repro.optimizer.join_enumeration import PlanBuilder
from repro.optimizer.plan import Plan, ScanNode
from repro.optimizer.selectivity import SelectivityEstimator
from repro.workload.query import Query, UpdateQuery



__all__ = ["WhatIfOptimizer"]

#: Per-table cap on the number of indexes considered when searching atomic
#: configurations for an arbitrary configuration, plus the threshold above
#: which the search switches from exhaustive enumeration to coordinate
#: descent.  These caps bound the cost of ground-truth what-if calls without
#: affecting the INUM/BIP code paths.
_MAX_INDEXES_PER_TABLE = 3
_EXHAUSTIVE_COMBINATION_LIMIT = 64
_COORDINATE_DESCENT_PASSES = 3


class WhatIfOptimizer:
    """A synthetic cost-based what-if optimizer over a statistics-only catalog."""

    def __init__(self, schema: Schema, cost_model: CostModel | None = None):
        self.schema = schema
        self.cost_model = cost_model or CostModel()
        self.selectivity = SelectivityEstimator(schema)
        self._access = AccessPathSelector(schema, self.cost_model, self.selectivity)
        self._builder = PlanBuilder(self.cost_model, self.selectivity)
        self._whatif_calls = 0
        self._plan_cache: dict[tuple, Plan] = {}
        self._scan_cache: dict[tuple, ScanNode] = {}
        self._ucost_cache: dict[tuple, float] = {}
        self._base_update_cache: dict[str, float] = {}

    # --------------------------------------------------------------- components
    @property
    def access_selector(self) -> AccessPathSelector:
        """The access-path selector (shared with INUM's template builder)."""
        return self._access

    @property
    def plan_builder(self) -> PlanBuilder:
        """The join/aggregation plan builder (shared with INUM's template builder)."""
        return self._builder

    # ------------------------------------------------------------------ metrics
    @property
    def whatif_calls(self) -> int:
        """Number of distinct what-if optimizations performed so far."""
        return self._whatif_calls

    def reset_counters(self) -> None:
        self._whatif_calls = 0

    # ----------------------------------------------------------------- planning
    def optimize_atomic(self, query: Query, atomic: AtomicConfiguration) -> Plan:
        """Optimize ``query`` with the access methods fixed by ``atomic``."""
        shell = self._shell(query)
        key = self._atomic_key(shell, atomic)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        self._whatif_calls += 1
        scans: dict[str, ScanNode] = {}
        widths: dict[str, float] = {}
        for table in shell.tables:
            index = atomic.index_for(table)
            if index is not None and index.table != table:
                raise OptimizerError(
                    f"Atomic configuration assigns index on {index.table!r} "
                    f"to table {table!r}")
            scans[table] = self._scan(shell, table, index)
            widths[table] = self._access.output_width(shell, table)
        plan = self._builder.build(shell, scans, widths)
        self._plan_cache[key] = plan
        return plan

    def optimize(self, query: Query, configuration: Configuration | Iterable[Index]
                 ) -> Plan:
        """Optimize ``query`` given that the indexes in ``configuration`` exist.

        The per-table access-method choices are searched exhaustively when the
        cross product is small; larger configurations are searched with a few
        passes of coordinate descent (improve one table's choice at a time),
        which matches how real optimizers prune the join/access search space
        while keeping the number of planner invocations bounded.
        """
        shell = self._shell(query)
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        per_table = self._per_table_choices(shell, configuration)

        product_size = 1
        for choices in per_table.values():
            product_size *= len(choices)
        if product_size <= _EXHAUSTIVE_COMBINATION_LIMIT:
            best_plan: Plan | None = None
            for combination in itertools.product(*per_table.values()):
                atomic = AtomicConfiguration(
                    dict(zip(per_table.keys(), combination)))
                plan = self.optimize_atomic(shell, atomic)
                if best_plan is None or plan.total_cost < best_plan.total_cost:
                    best_plan = plan
            if best_plan is None:
                raise OptimizerError(f"Could not plan query {query.name!r}")
            return best_plan
        return self._coordinate_descent(shell, per_table)

    def _coordinate_descent(self, shell: Query,
                            per_table: dict[str, list[Index | None]]) -> Plan:
        """Iteratively improve one table's access method at a time."""
        assignment: dict[str, Index | None] = {}
        for table, choices in per_table.items():
            assignment[table] = min(
                choices, key=lambda index: self._scan(shell, table, index).cost)
        best_plan = self.optimize_atomic(shell, AtomicConfiguration(assignment))
        for _ in range(_COORDINATE_DESCENT_PASSES):
            improved = False
            for table, choices in per_table.items():
                for choice in choices:
                    if choice is assignment[table]:
                        continue
                    trial = dict(assignment)
                    trial[table] = choice
                    plan = self.optimize_atomic(shell, AtomicConfiguration(trial))
                    if plan.total_cost < best_plan.total_cost - 1e-9:
                        best_plan = plan
                        assignment = trial
                        improved = True
            if not improved:
                break
        return best_plan

    def cost(self, query: Query, configuration: Configuration | Iterable[Index]
             ) -> float:
        """``cost(q, X)`` of the paper for SELECT statements / query shells."""
        return self.optimize(query, configuration).total_cost

    def statement_cost(self, query: Query,
                       configuration: Configuration | Iterable[Index]) -> float:
        """Full statement cost including update-maintenance terms.

        For SELECT statements this equals :meth:`cost`.  For UPDATE statements
        it is ``cost(q_r, X) + sum_a ucost(a, q) + c_q`` over the affected
        indexes ``a`` in the configuration (section 2 of the paper).
        """
        if not isinstance(configuration, Configuration):
            configuration = Configuration(configuration)
        if isinstance(query, UpdateQuery):
            shell_cost = self.cost(query.query_shell(), configuration)
            maintenance = sum(
                self.update_maintenance_cost(index, query)
                for index in configuration.indexes_on(query.table))
            return shell_cost + maintenance + self.base_update_cost(query)
        return self.cost(query, configuration)

    # --------------------------------------------------------------- update cost
    def update_maintenance_cost(self, index: Index, update: UpdateQuery) -> float:
        """``ucost(a, q)``: cost of maintaining ``index`` for update ``update``.

        Only indexes on the updated table are affected; indexes that store
        none of the written columns need no maintenance for an UPDATE (no
        row movement is modelled).
        """
        if index.table != update.table:
            return 0.0
        key = (update.name, index)
        cached = self._ucost_cache.get(key)
        if cached is not None:
            return cached
        written = {column.column for column in update.set_columns}
        if not written & set(index.all_columns):
            cost = 0.0
        else:
            table = self.schema.table(update.table)
            updated_rows = self._updated_rows(update)
            entry_width = sum(table.column_width(c) for c in index.all_columns) + 12
            entries_per_page = max(2.0, table.page_size * 0.7 / entry_width)
            height = self.cost_model.btree_height(table.row_count, entries_per_page)
            cost = self.cost_model.index_maintenance_cost(updated_rows, height)
        self._ucost_cache[key] = cost
        return cost

    def base_update_cost(self, update: UpdateQuery) -> float:
        """The fixed ``c_q`` term: updating the base tuples themselves.

        Configuration-independent, so it is cached per statement — workload
        costing loops re-read it for every probed configuration.
        """
        cached = self._base_update_cache.get(update.name)
        if cached is not None:
            return cached
        table = self.schema.table(update.table)
        updated_rows = self._updated_rows(update)
        cost = self.cost_model.base_update_cost(updated_rows, table.page_count)
        self._base_update_cache[update.name] = cost
        return cost

    def _updated_rows(self, update: UpdateQuery) -> float:
        table = self.schema.table(update.table)
        if update.update_fraction is not None:
            return max(1.0, table.row_count * update.update_fraction)
        selectivity = self.selectivity.table_selectivity(update, update.table)
        return max(1.0, table.row_count * selectivity)

    # -------------------------------------------------------------------- scans
    def access_scan(self, query: Query, table: str, index: Index | None) -> ScanNode:
        """The costed leaf access of ``table`` via ``index`` (or a heap scan)."""
        shell = self._shell(query)
        return self._scan(shell, table, index)

    def _scan(self, query: Query, table: str, index: Index | None) -> ScanNode:
        key = (query.name, table, None if index is None else index)
        cached = self._scan_cache.get(key)
        if cached is not None:
            return cached
        scan = self._access.scan(query, table, index)
        self._scan_cache[key] = scan
        return scan

    # ----------------------------------------------------------------- internals
    @staticmethod
    def _shell(query: Query) -> Query:
        if isinstance(query, UpdateQuery):
            return query.query_shell()
        return query

    @staticmethod
    def _atomic_key(query: Query, atomic: AtomicConfiguration) -> tuple:
        assignment = tuple(
            (table, atomic.index_for(table)) for table in query.tables)
        return (query.name, assignment)

    def _per_table_choices(self, query: Query, configuration: Configuration
                           ) -> dict[str, list[Index | None]]:
        """Per-table access-method choices: the heap scan plus the most
        promising relevant indexes of the configuration (ranked by their
        standalone access cost, capped at ``_MAX_INDEXES_PER_TABLE``)."""
        per_table: dict[str, list[Index | None]] = {}
        for table in query.tables:
            referenced = {c.column for c in query.referenced_columns_on(table)}
            relevant = [index for index in configuration.indexes_on(table)
                        if index.leading_column in referenced
                        or index.covers(referenced)]
            ranked = sorted(relevant,
                            key=lambda index: self._scan(query, table, index).cost)
            choices: list[Index | None] = [None]
            choices.extend(ranked[:_MAX_INDEXES_PER_TABLE])
            per_table[table] = choices
        return per_table
