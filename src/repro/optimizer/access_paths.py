"""Access-path selection: costing heap scans and (hypothetical) index scans."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema
from repro.catalog.table import Table
from repro.indexes.index import Index
from repro.optimizer.cost_model import CostModel
from repro.optimizer.plan import AccessPath, ScanNode
from repro.optimizer.selectivity import SelectivityEstimator
from repro.workload.predicates import ColumnRef, ComparisonOperator, SimplePredicate
from repro.workload.query import Query

__all__ = ["AccessPathSelector"]


@dataclass(frozen=True)
class _IndexApplicability:
    """How well an index matches a query's predicates on its table."""

    prefix_length: int
    index_selectivity: float
    covering: bool


class AccessPathSelector:
    """Builds costed :class:`ScanNode` leaves for a query/table/index triple.

    The scan node produced for an index access uses exactly that index (it
    does not silently fall back to a heap scan); choosing between the index
    and the heap is the job of the configuration search above — in the BIP it
    corresponds to the ``I_0`` ("no index") variable, in the what-if optimizer
    to enumerating atomic configurations.
    """

    def __init__(self, schema: Schema, cost_model: CostModel,
                 selectivity: SelectivityEstimator):
        self._schema = schema
        self._cost_model = cost_model
        self._selectivity = selectivity

    # -------------------------------------------------------------------- public
    def seq_scan(self, query: Query, table: str) -> ScanNode:
        """A heap scan of ``table`` with the query's local predicates applied."""
        table_def = self._schema.table(table)
        output_rows = self._selectivity.table_cardinality(query, table)
        cost = self._cost_model.seq_scan_cost(table_def.page_count, table_def.row_count)
        order = self._heap_order(table_def)
        return ScanNode(cost=cost, rows=output_rows, output_order=order,
                        table=table, index=None, access_path=AccessPath.SEQ_SCAN)

    def index_scan(self, query: Query, table: str, index: Index) -> ScanNode:
        """An index scan of ``table`` via ``index``."""
        table_def = self._schema.table(table)
        applicability = self._applicability(query, table, index)
        output_rows = self._selectivity.table_cardinality(query, table)
        matched_rows = max(1.0, table_def.row_count * applicability.index_selectivity)

        entry_width = sum(table_def.column_width(c) for c in index.all_columns) + 12
        entries_per_page = max(2.0, table_def.page_size * 0.7 / entry_width)
        leaf_pages = max(1.0, table_def.row_count / entries_per_page)
        tree_height = self._cost_model.btree_height(table_def.row_count,
                                                    entries_per_page)
        leading_stats = table_def.column_statistics(index.leading_column)
        correlation = 1.0 if index.clustered else leading_stats.correlation

        cost = self._cost_model.index_scan_cost(
            matched_rows=matched_rows,
            total_rows=table_def.row_count,
            leaf_pages=leaf_pages,
            heap_pages=table_def.page_count,
            covering=applicability.covering,
            correlation=correlation,
            tree_height=tree_height,
        )
        access_path = (AccessPath.INDEX_ONLY_SCAN if applicability.covering
                       else AccessPath.INDEX_SCAN)
        order = ColumnRef(table, index.leading_column)
        return ScanNode(cost=cost, rows=output_rows, output_order=order,
                        table=table, index=index, access_path=access_path)

    def scan(self, query: Query, table: str, index: Index | None) -> ScanNode:
        """Dispatch to :meth:`seq_scan` or :meth:`index_scan`."""
        if index is None:
            return self.seq_scan(query, table)
        return self.index_scan(query, table, index)

    def output_width(self, query: Query, table: str) -> float:
        """Width in bytes of the columns ``table`` contributes to the query."""
        table_def = self._schema.table(table)
        columns = query.referenced_columns_on(table)
        if not columns:
            return 8.0
        return float(sum(table_def.column_width(c.column) for c in columns)) + 8.0

    # ----------------------------------------------------------------- internals
    def _heap_order(self, table_def: Table) -> ColumnRef | None:
        """Heap scans deliver clustered-key order when the table has a primary key."""
        if table_def.primary_key:
            return ColumnRef(table_def.name, table_def.primary_key[0])
        return None

    def _applicability(self, query: Query, table: str,
                       index: Index) -> _IndexApplicability:
        """Match the query's sargable predicates against the index key prefix."""
        predicates = query.sargable_predicates_on(table)
        by_column: dict[str, list[SimplePredicate]] = {}
        for predicate in predicates:
            by_column.setdefault(predicate.column.column, []).append(predicate)

        index_selectivity = 1.0
        prefix_length = 0
        for key_column in index.key_columns:
            column_predicates = by_column.get(key_column)
            if not column_predicates:
                break
            prefix_length += 1
            column_selectivity = 1.0
            only_equalities = True
            for predicate in column_predicates:
                column_selectivity *= self._selectivity.predicate_selectivity(predicate)
                if predicate.operator not in (ComparisonOperator.EQ,
                                              ComparisonOperator.IN):
                    only_equalities = False
            index_selectivity *= column_selectivity
            if not only_equalities:
                # A range predicate consumes the rest of the key prefix: later
                # key columns can no longer narrow the scanned range.
                break

        referenced = query.referenced_columns_on(table)
        covering = index.covers(referenced) if referenced else True
        return _IndexApplicability(prefix_length=prefix_length,
                                   index_selectivity=min(1.0, index_selectivity),
                                   covering=covering)
