"""Physical plan representation.

Plans are trees of :class:`PlanNode` objects.  Leaf nodes are
:class:`ScanNode` instances — these are the "slots" INUM turns into template
holes.  Internal nodes (joins, sorts, aggregation) make up the *internal plan*
whose cost becomes the ``beta`` constant of linear composability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from typing import Iterator

from repro.indexes.index import Index
from repro.workload.predicates import ColumnRef

__all__ = ["AccessPath", "JoinAlgorithm", "PlanNode", "ScanNode", "JoinNode",
           "SortNode", "AggregateNode", "Plan"]


class AccessPath(enum.Enum):
    """Access method used by a leaf node."""

    SEQ_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"
    INDEX_ONLY_SCAN = "index_only_scan"


class JoinAlgorithm(enum.Enum):
    """Join algorithms considered by the optimizer."""

    HASH_JOIN = "hash_join"
    MERGE_JOIN = "merge_join"
    NESTED_LOOP = "nested_loop"


@dataclass
class PlanNode:
    """Base class for plan nodes.

    Attributes:
        cost: Cost of this node alone (excluding children).
        rows: Estimated output cardinality.
        output_order: Column whose order the node's output follows, if any.
    """

    cost: float
    rows: float
    output_order: ColumnRef | None = None

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def total_cost(self) -> float:
        """Cost of the subtree rooted at this node."""
        return self.cost + sum(child.total_cost() for child in self.children)

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """A leaf access of one table — the INUM "slot".

    Attributes:
        table: Accessed table.
        index: Index used, or ``None`` for a heap scan.
        access_path: Which access method was chosen.
    """

    table: str = ""
    index: Index | None = None
    access_path: AccessPath = AccessPath.SEQ_SCAN

    def describe(self) -> str:
        if self.index is None:
            return f"SeqScan({self.table})"
        kind = ("IndexOnlyScan" if self.access_path is AccessPath.INDEX_ONLY_SCAN
                else "IndexScan")
        return f"{kind}({self.table} via {self.index.name})"


@dataclass
class JoinNode(PlanNode):
    """A binary join."""

    algorithm: JoinAlgorithm = JoinAlgorithm.HASH_JOIN
    left: PlanNode | None = None
    right: PlanNode | None = None
    join_column_left: ColumnRef | None = None
    join_column_right: ColumnRef | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        children = []
        if self.left is not None:
            children.append(self.left)
        if self.right is not None:
            children.append(self.right)
        return tuple(children)

    def describe(self) -> str:
        return (f"{self.algorithm.value}({self.join_column_left} = "
                f"{self.join_column_right})")


@dataclass
class SortNode(PlanNode):
    """An explicit sort (for merge joins, order-by or sort-based grouping)."""

    child: PlanNode | None = None
    sort_column: ColumnRef | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        return f"Sort({self.sort_column})"


@dataclass
class AggregateNode(PlanNode):
    """Grouping / aggregation (hash, stream or scalar)."""

    child: PlanNode | None = None
    strategy: str = "hash"
    group_columns: tuple[ColumnRef, ...] = ()

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        columns = ", ".join(str(c) for c in self.group_columns) or "-"
        return f"Aggregate[{self.strategy}]({columns})"


class Plan:
    """A complete physical plan for one statement.

    Exposes the two quantities INUM needs: the per-slot access costs (one per
    leaf) and the *internal plan cost* — the total cost minus the leaves.
    """

    def __init__(self, root: PlanNode, query_name: str = ""):
        self.root = root
        self.query_name = query_name

    @property
    def total_cost(self) -> float:
        return self.root.total_cost()

    def scan_nodes(self) -> tuple[ScanNode, ...]:
        """The leaf accesses of the plan, in traversal order."""
        return tuple(node for node in self.root.walk() if isinstance(node, ScanNode))

    def scan_node_for(self, table: str) -> ScanNode | None:
        for node in self.scan_nodes():
            if node.table == table:
                return node
        return None

    def access_cost(self, table: str) -> float:
        node = self.scan_node_for(table)
        return 0.0 if node is None else node.cost

    @property
    def internal_cost(self) -> float:
        """Total cost minus all leaf access costs (the ``beta`` of the template)."""
        return self.total_cost - sum(node.cost for node in self.scan_nodes())

    def indexes_used(self) -> tuple[Index, ...]:
        used = [node.index for node in self.scan_nodes() if node.index is not None]
        return tuple(dict.fromkeys(used))

    def explain(self) -> str:
        """A compact, indented EXPLAIN-style rendering of the plan."""
        lines: list[str] = []

        def render(node: PlanNode, depth: int) -> None:
            describe = getattr(node, "describe", None)
            label = describe() if callable(describe) else type(node).__name__
            lines.append(f"{'  ' * depth}{label}  "
                         f"(cost={node.cost:.2f}, rows={node.rows:.0f})")
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Plan(query={self.query_name!r}, cost={self.total_cost:.2f})"
