"""What-if optimizer substrate.

This package plays the role of the DBMS query optimizer (and its what-if
interface) in the paper: given a statement and a hypothetical index
configuration it produces a physical plan and its estimated cost, purely from
catalog statistics.  The cost model is deliberately non-linear (random vs.
sequential I/O, logarithmic B-tree descents, sort ``n log n`` terms, memory
spill thresholds), because the whole point of linear composability
(Definition 1 in the paper) is that it does *not* require a linear optimizer
cost model — the non-linearity is folded into the per-query constants.
"""

from repro.optimizer.cost_model import CostModel
from repro.optimizer.selectivity import SelectivityEstimator
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    JoinAlgorithm,
    JoinNode,
    Plan,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.whatif import WhatIfOptimizer

__all__ = [
    "CostModel",
    "SelectivityEstimator",
    "AccessPath",
    "AggregateNode",
    "JoinAlgorithm",
    "JoinNode",
    "Plan",
    "PlanNode",
    "ScanNode",
    "SortNode",
    "WhatIfOptimizer",
]
