"""Selectivity estimation from catalog statistics (and generator hints)."""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import Schema
from repro.workload.predicates import ComparisonOperator, JoinPredicate, SimplePredicate
from repro.workload.query import Query

__all__ = ["SelectivityEstimator"]

#: Default selectivity for operators the histogram cannot help with.
_DEFAULT_SELECTIVITY = {
    ComparisonOperator.NE: 0.9,
    ComparisonOperator.LIKE: 0.1,
    ComparisonOperator.IS_NULL: 0.05,
}
#: Floor applied to combined selectivities so cardinalities never hit zero.
_MIN_SELECTIVITY = 1e-7


class SelectivityEstimator:
    """Estimates predicate, table and join selectivities.

    Workload generators may attach ``selectivity_hint`` values to predicates;
    hints take precedence over histogram-based estimates so that experiments
    can control exactly how selective the generated workloads are (the same
    way the TPC-H QGEN substitution parameters do for the paper).
    """

    def __init__(self, schema: Schema):
        self._schema = schema

    # --------------------------------------------------------------- predicates
    def predicate_selectivity(self, predicate: SimplePredicate) -> float:
        """Selectivity of a single selection predicate."""
        table = self._schema.table(predicate.table)
        stats = table.column_statistics(predicate.column.column)
        if predicate.selectivity_hint is not None:
            # Hints describe the fraction of the *domain* the predicate
            # covers; on skewed data a typical domain slice holds fewer rows,
            # so the row selectivity shrinks accordingly.
            return self._clamp(predicate.selectivity_hint
                               * stats.typical_mass_ratio())
        operator = predicate.operator
        if operator is ComparisonOperator.EQ:
            value = self._numeric(predicate.value)
            return self._clamp(stats.equality_selectivity(value))
        if operator is ComparisonOperator.IN:
            values = predicate.value if isinstance(predicate.value, (tuple, list)) else ()
            total = sum(stats.equality_selectivity(self._numeric(v)) for v in values)
            return self._clamp(total)
        if operator is ComparisonOperator.BETWEEN:
            low, high = predicate.value
            return self._clamp(stats.range_selectivity(self._numeric(low),
                                                       self._numeric(high)))
        if operator in (ComparisonOperator.LT, ComparisonOperator.LE):
            return self._clamp(stats.range_selectivity(None, self._numeric(predicate.value)))
        if operator in (ComparisonOperator.GT, ComparisonOperator.GE):
            return self._clamp(stats.range_selectivity(self._numeric(predicate.value), None))
        if operator is ComparisonOperator.IS_NULL:
            return self._clamp(stats.null_fraction or _DEFAULT_SELECTIVITY[operator])
        return self._clamp(_DEFAULT_SELECTIVITY.get(operator, 1.0 / 3.0))

    def combined_selectivity(self, predicates: Iterable[SimplePredicate]) -> float:
        """Selectivity of a conjunction, assuming independence."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(predicate)
        return self._clamp(selectivity)

    def table_selectivity(self, query: Query, table: str) -> float:
        """Combined selectivity of all local predicates on ``table`` in ``query``."""
        return self.combined_selectivity(query.predicates_on(table))

    def table_cardinality(self, query: Query, table: str) -> float:
        """Estimated number of rows of ``table`` surviving the local predicates."""
        table_def = self._schema.table(table)
        return max(1.0, table_def.row_count * self.table_selectivity(query, table))

    # -------------------------------------------------------------------- joins
    def join_selectivity(self, join: JoinPredicate) -> float:
        """Selectivity of an equi-join: ``1 / max(ndv(left), ndv(right))``."""
        left_stats = self._schema.table(join.left.table).column_statistics(join.left.column)
        right_stats = self._schema.table(join.right.table).column_statistics(join.right.column)
        ndv = max(left_stats.distinct_values, right_stats.distinct_values, 1.0)
        return self._clamp(1.0 / ndv)

    def group_count(self, query: Query, input_rows: float) -> float:
        """Estimated number of groups produced by the query's GROUP BY."""
        if not query.group_by:
            return 1.0
        distinct = 1.0
        for column in query.group_by:
            stats = self._schema.table(column.table).column_statistics(column.column)
            distinct *= max(1.0, stats.distinct_values)
        return max(1.0, min(distinct, input_rows))

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _numeric(value) -> float | None:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            # Hash strings onto a stable pseudo-position so equality estimates
            # stay deterministic even without a real value domain.
            return float(abs(hash(value)) % 10_000)
        return None

    @staticmethod
    def _clamp(selectivity: float) -> float:
        return min(1.0, max(_MIN_SELECTIVITY, selectivity))
