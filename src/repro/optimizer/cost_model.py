"""Cost-model constants and primitive cost formulas.

The formulas follow the classic System-R / PostgreSQL style: page I/O split
into sequential and random accesses, CPU charged per tuple and per operator
invocation, B-tree descents charged logarithmically, sorts charged
``n log n`` with a spill penalty beyond working memory, and hash joins charged
per build/probe tuple with their own spill penalty.  These non-linearities are
what make the optimizer interesting for INUM — they are captured inside the
per-query constants and never need to be linear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the synthetic optimizer's cost model.

    The defaults are PostgreSQL-like (sequential page cost 1.0, random page
    cost 4.0, per-tuple CPU 0.01).  ``work_mem_bytes`` bounds in-memory sorts
    and hash tables; exceeding it triggers a spill penalty, one of the
    non-linear effects the cost model deliberately includes.
    """

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    work_mem_bytes: float = 4 * 1024 * 1024
    page_size_bytes: float = 8192.0
    hash_build_factor: float = 1.4
    spill_penalty_factor: float = 2.5

    # ------------------------------------------------------------------- scans
    def seq_scan_cost(self, pages: float, rows: float) -> float:
        """Full sequential scan of a heap."""
        return pages * self.seq_page_cost + rows * self.cpu_tuple_cost

    def index_scan_cost(self, *, matched_rows: float, total_rows: float,
                        leaf_pages: float, heap_pages: float,
                        covering: bool, correlation: float,
                        tree_height: float) -> float:
        """Cost of a (range) B-tree index scan.

        Args:
            matched_rows: Rows satisfying the index-sargable predicates.
            total_rows: Table cardinality.
            leaf_pages: Number of index leaf pages.
            heap_pages: Number of heap pages of the table.
            covering: Whether the index covers the query (no heap fetches).
            correlation: Physical correlation of the leading key in [-1, 1].
            tree_height: Height of the B-tree (descend cost, random I/O).
        """
        selectivity = 0.0 if total_rows <= 0 else min(1.0, matched_rows / total_rows)
        descend = tree_height * self.random_page_cost
        leaf_io = max(1.0, leaf_pages * selectivity) * self.seq_page_cost
        cpu = matched_rows * (self.cpu_index_tuple_cost + self.cpu_operator_cost)
        if covering:
            return descend + leaf_io + cpu
        heap_io = self.heap_fetch_cost(matched_rows, heap_pages, correlation)
        return descend + leaf_io + cpu + heap_io + matched_rows * self.cpu_tuple_cost

    def heap_fetch_cost(self, matched_rows: float, heap_pages: float,
                        correlation: float) -> float:
        """Cost of fetching matched rows from the heap after an index scan.

        Uses a Mackert–Lohman style cap (never more page reads than the heap
        has pages, and never more than one read per matched row) and blends
        sequential and random I/O according to the physical correlation of
        the index's leading column.
        """
        if matched_rows <= 0:
            return 0.0
        fetched_pages = min(heap_pages, matched_rows)
        abs_correlation = min(1.0, abs(correlation))
        per_page = (abs_correlation * self.seq_page_cost
                    + (1.0 - abs_correlation) * self.random_page_cost)
        return fetched_pages * per_page

    def btree_height(self, rows: float, entries_per_page: float) -> float:
        """Height of a B-tree with ``rows`` entries and the given fanout."""
        fanout = max(2.0, entries_per_page)
        return max(1.0, math.ceil(math.log(max(rows, 2.0), fanout)))

    # ------------------------------------------------------------------- sorts
    def sort_cost(self, rows: float, row_width: float) -> float:
        """Cost of sorting ``rows`` tuples of ``row_width`` bytes."""
        if rows <= 1:
            return self.cpu_operator_cost
        comparisons = rows * math.log2(max(rows, 2.0))
        cpu = comparisons * self.cpu_operator_cost
        data_bytes = rows * max(row_width, 1.0)
        if data_bytes <= self.work_mem_bytes:
            return cpu
        # External sort: read + write each page roughly twice, plus penalty.
        pages = data_bytes / self.page_size_bytes
        spill_io = 2.0 * pages * self.seq_page_cost * self.spill_penalty_factor
        return cpu + spill_io

    # ------------------------------------------------------------------- joins
    def hash_join_cost(self, build_rows: float, probe_rows: float,
                       build_width: float, output_rows: float) -> float:
        """Hash join: build the smaller input, probe with the larger one."""
        cpu = (build_rows * self.cpu_operator_cost * self.hash_build_factor
               + probe_rows * self.cpu_operator_cost
               + output_rows * self.cpu_tuple_cost)
        build_bytes = build_rows * max(build_width, 1.0)
        if build_bytes <= self.work_mem_bytes:
            return cpu
        pages = build_bytes / self.page_size_bytes
        spill_io = 2.0 * pages * self.seq_page_cost * self.spill_penalty_factor
        return cpu + spill_io

    def merge_join_cost(self, left_rows: float, right_rows: float,
                        output_rows: float) -> float:
        """Merge join over two already-sorted inputs."""
        return ((left_rows + right_rows) * self.cpu_operator_cost
                + output_rows * self.cpu_tuple_cost)

    def nested_loop_cost(self, outer_rows: float, inner_rows: float,
                         output_rows: float) -> float:
        """Naive nested-loop join (only competitive for tiny inputs)."""
        return (outer_rows * inner_rows * self.cpu_operator_cost
                + output_rows * self.cpu_tuple_cost)

    # ------------------------------------------------------------- aggregation
    def hash_aggregate_cost(self, input_rows: float, group_count: float) -> float:
        """Hash-based grouping."""
        return (input_rows * self.cpu_operator_cost * self.hash_build_factor
                + group_count * self.cpu_tuple_cost)

    def stream_aggregate_cost(self, input_rows: float, group_count: float) -> float:
        """Grouping over an input already sorted on the grouping columns."""
        return input_rows * self.cpu_operator_cost + group_count * self.cpu_tuple_cost

    def plain_aggregate_cost(self, input_rows: float) -> float:
        """Scalar aggregation without grouping."""
        return input_rows * self.cpu_operator_cost + self.cpu_tuple_cost

    # ----------------------------------------------------------------- updates
    def index_maintenance_cost(self, updated_rows: float, tree_height: float) -> float:
        """Cost of maintaining one index for ``updated_rows`` modified rows."""
        per_row = (tree_height * self.random_page_cost * 0.5
                   + self.cpu_index_tuple_cost)
        return updated_rows * per_row

    def base_update_cost(self, updated_rows: float, heap_pages: float) -> float:
        """Cost of updating the base tuples themselves (the ``c_q`` term)."""
        touched_pages = min(heap_pages, updated_rows)
        return touched_pages * self.random_page_cost + updated_rows * self.cpu_tuple_cost
