"""Column statistics: equi-depth histograms, distinct counts and skew.

The paper evaluates CoPhy on TPC-H data generated with the ``tpcdskew`` tool,
which replaces the uniform value distributions of standard TPC-H with Zipfian
distributions controlled by a skew parameter ``z`` (``z = 0`` is uniform,
``z = 2`` is highly skewed).  We do not materialise tuples; instead every
column carries a :class:`ColumnStatistics` object whose histogram is derived
analytically from a Zipfian model with the same ``z`` knob.  Selectivity
estimation in the what-if optimizer reads these histograms, so data skew
influences index benefit in the same qualitative way as in the paper
(section 5.2: "certain indices become very beneficial" under skew).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any, Mapping, Sequence

__all__ = ["HistogramBucket", "Histogram", "ColumnStatistics", "zipf_frequencies"]


def zipf_frequencies(num_values: int, skew: float) -> list[float]:
    """Return the relative frequencies of ``num_values`` values under Zipf(``skew``).

    Args:
        num_values: Number of distinct values (must be positive).
        skew: Zipf exponent ``z``; 0 yields a uniform distribution.

    Returns:
        A list of ``num_values`` frequencies summing to 1.0, sorted from the
        most frequent value to the least frequent one.
    """
    if num_values <= 0:
        raise ValueError("num_values must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    if skew == 0:
        return [1.0 / num_values] * num_values
    weights = [1.0 / (rank ** skew) for rank in range(1, num_values + 1)]
    total = sum(weights)
    return [w / total for w in weights]


@dataclass(frozen=True)
class HistogramBucket:
    """A single bucket of an equi-width histogram over a numeric domain.

    Attributes:
        low: Inclusive lower bound of the bucket.
        high: Exclusive upper bound (inclusive for the last bucket).
        frequency: Fraction of rows whose value falls in the bucket.
        distinct_values: Estimated number of distinct values in the bucket.
    """

    low: float
    high: float
    frequency: float
    distinct_values: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("bucket high bound must be >= low bound")
        if self.frequency < 0:
            raise ValueError("bucket frequency must be non-negative")
        if self.distinct_values < 0:
            raise ValueError("bucket distinct_values must be non-negative")

    @property
    def width(self) -> float:
        return self.high - self.low


class Histogram:
    """Equi-width histogram with Zipf-skewed bucket frequencies.

    The histogram supports the two estimates the optimizer needs: equality
    selectivity (``selectivity_eq``) and range selectivity
    (``selectivity_range``).  Skew is encoded by assigning Zipfian mass to the
    buckets (most of the mass concentrated in the first buckets when ``z`` is
    large), which mirrors how ``tpcdskew`` skews TPC-H columns.
    """

    def __init__(self, buckets: Sequence[HistogramBucket]):
        if not buckets:
            raise ValueError("Histogram needs at least one bucket")
        self._buckets = tuple(buckets)
        total = sum(b.frequency for b in self._buckets)
        if total <= 0:
            raise ValueError("Histogram frequencies must sum to a positive value")
        # Normalise defensively so selectivities stay in [0, 1].
        if abs(total - 1.0) > 1e-9:
            self._buckets = tuple(
                HistogramBucket(b.low, b.high, b.frequency / total, b.distinct_values)
                for b in self._buckets
            )

    @classmethod
    def from_domain(cls, low: float, high: float, distinct_values: int,
                    skew: float = 0.0, num_buckets: int = 32) -> "Histogram":
        """Build a histogram for a numeric domain ``[low, high]``.

        Args:
            low: Minimum value of the column.
            high: Maximum value of the column.
            distinct_values: Number of distinct values in the column.
            skew: Zipf exponent controlling how unevenly rows spread over buckets.
            num_buckets: Number of equi-width buckets.
        """
        if high < low:
            raise ValueError("high must be >= low")
        distinct_values = max(1, int(distinct_values))
        num_buckets = max(1, min(num_buckets, distinct_values))
        frequencies = zipf_frequencies(num_buckets, skew)
        span = (high - low) or 1.0
        bucket_width = span / num_buckets
        per_bucket_ndv = distinct_values / num_buckets
        buckets = []
        for position, frequency in enumerate(frequencies):
            bucket_low = low + position * bucket_width
            bucket_high = low + (position + 1) * bucket_width
            buckets.append(HistogramBucket(bucket_low, bucket_high, frequency,
                                           per_bucket_ndv))
        return cls(buckets)

    @property
    def buckets(self) -> tuple[HistogramBucket, ...]:
        return self._buckets

    # ------------------------------------------------------------ serialization
    def to_payload(self) -> dict[str, Any]:
        """A JSON-representable payload (wire format of the tuning server).

        Buckets are flat ``[low, high, frequency, distinct_values]`` rows;
        frequencies are already normalised, so a decode re-runs the
        constructor's normalisation as a no-op and the round trip is exact.
        """
        return {"buckets": [[b.low, b.high, b.frequency, b.distinct_values]
                            for b in self._buckets]}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Histogram":
        return cls([HistogramBucket(*entry) for entry in payload["buckets"]])

    @property
    def low(self) -> float:
        return self._buckets[0].low

    @property
    def high(self) -> float:
        return self._buckets[-1].high

    @property
    def max_bucket_frequency(self) -> float:
        """Frequency of the heaviest bucket; grows with skew."""
        return max(b.frequency for b in self._buckets)

    def selectivity_eq(self, value: float) -> float:
        """Selectivity of ``column = value`` assuming uniformity inside a bucket."""
        bucket = self._locate(value)
        if bucket is None:
            return 0.0
        return bucket.frequency / max(bucket.distinct_values, 1.0)

    def selectivity_range(self, low: float | None, high: float | None,
                          low_inclusive: bool = True,
                          high_inclusive: bool = True) -> float:
        """Selectivity of ``low <= column <= high`` (either bound may be None)."""
        effective_low = self.low if low is None else low
        effective_high = self.high if high is None else high
        if effective_high < effective_low:
            return 0.0
        selected = 0.0
        for bucket in self._buckets:
            overlap_low = max(bucket.low, effective_low)
            overlap_high = min(bucket.high, effective_high)
            if overlap_high <= overlap_low:
                # A zero-width overlap only matters for point buckets.
                if bucket.width == 0 and bucket.low == effective_low:
                    selected += bucket.frequency
                continue
            if bucket.width == 0:
                selected += bucket.frequency
            else:
                fraction = (overlap_high - overlap_low) / bucket.width
                selected += bucket.frequency * min(1.0, max(0.0, fraction))
        # Open bounds shave off roughly one value's worth of selectivity;
        # the effect is negligible for the domains we model, so ignore it.
        del low_inclusive, high_inclusive
        return min(1.0, max(0.0, selected))

    def _locate(self, value: float) -> HistogramBucket | None:
        if value < self.low or value > self.high:
            return None
        for bucket in self._buckets:
            if bucket.low <= value < bucket.high:
                return bucket
        return self._buckets[-1]

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(buckets={len(self._buckets)}, "
                f"domain=[{self.low}, {self.high}])")


@dataclass
class ColumnStatistics:
    """Statistics for a single column.

    Attributes:
        distinct_values: Number of distinct values (NDV).
        null_fraction: Fraction of NULL rows.
        histogram: Value-distribution histogram used for selectivity estimates.
        correlation: Physical-order correlation in [-1, 1]; 1 means the column
            is stored in sorted order (e.g. a clustered key), which makes range
            index scans cheaper.
        average_width: Average stored width in bytes (defaults to the column
            width when the catalog wires the statistics in).
    """

    distinct_values: float
    null_fraction: float = 0.0
    histogram: Histogram | None = None
    correlation: float = 0.0
    average_width: float = 8.0

    def __post_init__(self) -> None:
        if self.distinct_values <= 0:
            raise ValueError("distinct_values must be positive")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError("null_fraction must be within [0, 1]")
        if not -1.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be within [-1, 1]")

    # ------------------------------------------------------------ serialization
    def to_payload(self) -> dict[str, Any]:
        """A JSON-representable payload (wire format of the tuning server)."""
        return {
            "distinct_values": self.distinct_values,
            "null_fraction": self.null_fraction,
            "correlation": self.correlation,
            "average_width": self.average_width,
            "histogram": (None if self.histogram is None
                          else self.histogram.to_payload()),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ColumnStatistics":
        histogram = payload.get("histogram")
        return cls(
            distinct_values=float(payload["distinct_values"]),
            null_fraction=float(payload.get("null_fraction", 0.0)),
            histogram=(None if histogram is None
                       else Histogram.from_payload(histogram)),
            correlation=float(payload.get("correlation", 0.0)),
            average_width=float(payload.get("average_width", 8.0)),
        )

    def equality_selectivity(self, value: float | None = None) -> float:
        """Selectivity of an equality predicate on this column."""
        if self.histogram is not None and value is not None:
            estimate = self.histogram.selectivity_eq(value)
            if estimate > 0:
                return estimate
        return (1.0 - self.null_fraction) / self.distinct_values

    def range_selectivity(self, low: float | None, high: float | None) -> float:
        """Selectivity of a range predicate ``low <= column <= high``."""
        if self.histogram is not None:
            return self.histogram.selectivity_range(low, high)
        # Fallback: assume a unit domain and clamp.
        if low is None and high is None:
            return 1.0
        return 1.0 / 3.0

    def typical_mass_ratio(self) -> float:
        """Row mass of a *typical* (median) domain slice relative to uniform.

        Equals 1.0 for uniform data and drops below 1.0 as skew grows: under a
        Zipfian distribution most of the domain holds very few rows, so a
        predicate that selects a typical slice of the domain matches fewer
        rows than the uniform assumption predicts.  The selectivity estimator
        uses this to translate generator-supplied domain-fraction hints into
        row selectivities, which is how data skew makes selective indexes more
        beneficial (section 5.2 of the paper).
        """
        if self.histogram is None or len(self.histogram) == 0:
            return 1.0
        frequencies = sorted(bucket.frequency for bucket in self.histogram.buckets)
        median = frequencies[len(frequencies) // 2]
        uniform = 1.0 / len(self.histogram)
        if uniform <= 0:
            return 1.0
        return min(1.0, median / uniform)

    def skew_factor(self) -> float:
        """How concentrated the distribution is; 1.0 means uniform.

        Defined as the heaviest-bucket frequency relative to the uniform
        bucket frequency.  The what-if optimizer uses this to boost the
        benefit of highly selective indexes on skewed data.
        """
        if self.histogram is None or len(self.histogram) == 0:
            return 1.0
        uniform = 1.0 / len(self.histogram)
        return self.histogram.max_bucket_frequency / uniform

    @classmethod
    def for_key_column(cls, row_count: float, width: float = 8.0) -> "ColumnStatistics":
        """Statistics of a unique key column of a table with ``row_count`` rows."""
        histogram = Histogram.from_domain(0.0, max(row_count, 1.0), int(max(row_count, 1)))
        return cls(distinct_values=max(row_count, 1.0), histogram=histogram,
                   correlation=1.0, average_width=width)

    @classmethod
    def for_categorical(cls, distinct_values: int, skew: float = 0.0,
                        width: float = 8.0) -> "ColumnStatistics":
        """Statistics of a categorical column with ``distinct_values`` categories."""
        histogram = Histogram.from_domain(0.0, float(distinct_values), distinct_values,
                                          skew=skew,
                                          num_buckets=min(64, max(1, distinct_values)))
        return cls(distinct_values=float(distinct_values), histogram=histogram,
                   average_width=width)

    @classmethod
    def for_numeric_range(cls, low: float, high: float, distinct_values: int,
                          skew: float = 0.0, correlation: float = 0.0,
                          width: float = 8.0) -> "ColumnStatistics":
        """Statistics of a numeric column over ``[low, high]``."""
        histogram = Histogram.from_domain(low, high, distinct_values, skew=skew)
        return cls(distinct_values=float(max(1, distinct_values)), histogram=histogram,
                   correlation=correlation, average_width=width)
