"""Relational catalog substrate: schemas, tables, columns and statistics.

The catalog plays the role of the database system's metadata layer.  The
what-if optimizer (:mod:`repro.optimizer`) costs plans purely from the
statistics stored here, which is what lets the whole reproduction run without
a real DBMS: hypothetical ("what-if") indexes are simply indexes that exist in
the catalog but have no physical representation anywhere.
"""

from repro.catalog.column import Column, ColumnType
from repro.catalog.statistics import ColumnStatistics, Histogram, HistogramBucket
from repro.catalog.table import Table
from repro.catalog.schema import Schema
from repro.catalog.tpch import tpch_schema, TPCH_TABLE_NAMES

__all__ = [
    "Column",
    "ColumnType",
    "ColumnStatistics",
    "Histogram",
    "HistogramBucket",
    "Table",
    "Schema",
    "tpch_schema",
    "TPCH_TABLE_NAMES",
]
