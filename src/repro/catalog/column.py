"""Column definitions for the relational catalog."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnType(enum.Enum):
    """Logical column types with a fixed storage width in bytes.

    The widths are deliberately simple (fixed-size encodings) because they are
    only consumed by index/table size estimation and by the cost model; the
    reproduction never stores actual tuples.
    """

    INTEGER = "integer"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    FLOAT = "float"
    DATE = "date"
    CHAR = "char"
    VARCHAR = "varchar"
    TEXT = "text"

    @property
    def default_width(self) -> int:
        """Storage width in bytes used when a column does not override it."""
        return _DEFAULT_WIDTHS[self]


_DEFAULT_WIDTHS = {
    ColumnType.INTEGER: 4,
    ColumnType.BIGINT: 8,
    ColumnType.DECIMAL: 8,
    ColumnType.FLOAT: 8,
    ColumnType.DATE: 4,
    ColumnType.CHAR: 16,
    ColumnType.VARCHAR: 32,
    ColumnType.TEXT: 128,
}


@dataclass(frozen=True)
class Column:
    """A column of a table.

    Attributes:
        name: Column name, unique within its table.
        column_type: Logical type; determines the default storage width.
        width: Storage width in bytes.  Defaults to the type's width.
        nullable: Whether the column may contain NULLs (affects selectivity
            of IS NULL predicates).
    """

    name: str
    column_type: ColumnType = ColumnType.INTEGER
    width: int = field(default=0)
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Column name must be non-empty")
        if self.width <= 0:
            object.__setattr__(self, "width", self.column_type.default_width)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
