"""Table definitions: columns, row counts, page counts and per-column statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.catalog.column import Column
from repro.catalog.statistics import ColumnStatistics
from repro.exceptions import CatalogError

DEFAULT_PAGE_SIZE_BYTES = 8192
#: Per-tuple bookkeeping overhead (headers, alignment) charged on top of the
#: declared column widths when estimating table and index sizes.
TUPLE_OVERHEAD_BYTES = 24


@dataclass
class Table:
    """A base table with columns, cardinality and statistics.

    Attributes:
        name: Table name, unique within a schema.
        columns: Ordered column definitions.
        row_count: Number of rows in the table.
        statistics: Optional per-column statistics (column name -> stats).
        primary_key: Names of the primary-key columns (assumed clustered).
        page_size: Page size in bytes used for page-count estimates.
    """

    name: str
    columns: tuple[Column, ...]
    row_count: float
    statistics: dict[str, ColumnStatistics] = field(default_factory=dict)
    primary_key: tuple[str, ...] = ()
    page_size: int = DEFAULT_PAGE_SIZE_BYTES

    def __init__(self, name: str, columns: Iterable[Column], row_count: float,
                 statistics: Mapping[str, ColumnStatistics] | None = None,
                 primary_key: Iterable[str] = (),
                 page_size: int = DEFAULT_PAGE_SIZE_BYTES):
        if not name:
            raise CatalogError("Table name must be non-empty")
        columns = tuple(columns)
        if not columns:
            raise CatalogError(f"Table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"Table {name!r} has duplicate column names")
        if row_count < 0:
            raise CatalogError(f"Table {name!r} has negative row_count")
        self.name = name
        self.columns = columns
        self.row_count = float(row_count)
        self.statistics = dict(statistics or {})
        self.primary_key = tuple(primary_key)
        self.page_size = int(page_size)
        self._columns_by_name = {c.name: c for c in columns}
        for key_column in self.primary_key:
            if key_column not in self._columns_by_name:
                raise CatalogError(
                    f"Primary-key column {key_column!r} not in table {name!r}")
        for stats_column in self.statistics:
            if stats_column not in self._columns_by_name:
                raise CatalogError(
                    f"Statistics refer to unknown column {stats_column!r} "
                    f"in table {name!r}")

    # ------------------------------------------------------------------ columns
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, column_name: str) -> bool:
        return column_name in self._columns_by_name

    def column(self, column_name: str) -> Column:
        try:
            return self._columns_by_name[column_name]
        except KeyError as exc:
            raise CatalogError(
                f"Table {self.name!r} has no column {column_name!r}") from exc

    def column_width(self, column_name: str) -> int:
        return self.column(column_name).width

    # --------------------------------------------------------------- statistics
    def column_statistics(self, column_name: str) -> ColumnStatistics:
        """Statistics for a column, synthesising a conservative default if absent."""
        self.column(column_name)
        stats = self.statistics.get(column_name)
        if stats is not None:
            return stats
        default = ColumnStatistics(
            distinct_values=max(1.0, self.row_count / 10.0),
            average_width=float(self.column_width(column_name)),
        )
        self.statistics[column_name] = default
        return default

    def set_column_statistics(self, column_name: str, stats: ColumnStatistics) -> None:
        self.column(column_name)
        self.statistics[column_name] = stats

    # --------------------------------------------------------------------- size
    @property
    def tuple_width(self) -> int:
        """Average width of a full tuple in bytes, including per-tuple overhead."""
        return sum(c.width for c in self.columns) + TUPLE_OVERHEAD_BYTES

    @property
    def page_count(self) -> float:
        """Number of heap pages occupied by the table."""
        tuples_per_page = max(1.0, self.page_size / self.tuple_width)
        return max(1.0, self.row_count / tuples_per_page)

    @property
    def size_bytes(self) -> float:
        """Total heap size of the table in bytes."""
        return self.page_count * self.page_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Table(name={self.name!r}, columns={len(self.columns)}, "
                f"rows={self.row_count:.0f})")
