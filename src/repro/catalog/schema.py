"""Schema: a named collection of tables plus helpers used across the library."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.catalog.table import Table
from repro.exceptions import CatalogError


class Schema:
    """A database schema (set of tables).

    The schema is the single source of truth consulted by the workload model
    (to validate column references), the candidate generator (to enumerate
    indexable columns), the what-if optimizer (for statistics) and the
    constraint language (e.g. the per-table clustered-index rule).
    """

    def __init__(self, tables: Iterable[Table], name: str = "schema"):
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise CatalogError(f"Duplicate table {table.name!r} in schema")
            self._tables[table.name] = table

    # ------------------------------------------------------------------ lookup
    @property
    def tables(self) -> tuple[Table, ...]:
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables.keys())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def table(self, table_name: str) -> Table:
        try:
            return self._tables[table_name]
        except KeyError as exc:
            raise CatalogError(f"Schema has no table {table_name!r}") from exc

    def has_column(self, table_name: str, column_name: str) -> bool:
        return table_name in self._tables and self._tables[table_name].has_column(column_name)

    def resolve_column(self, table_name: str, column_name: str):
        """Return the :class:`Column`, raising :class:`CatalogError` if missing."""
        return self.table(table_name).column(column_name)

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"Duplicate table {table.name!r} in schema")
        self._tables[table.name] = table

    # -------------------------------------------------------------------- sizes
    @property
    def total_size_bytes(self) -> float:
        """Total heap size of all tables; storage budgets are fractions of this."""
        return sum(table.size_bytes for table in self._tables.values())

    @property
    def total_row_count(self) -> float:
        return sum(table.row_count for table in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema(name={self.name!r}, tables={len(self._tables)})"
