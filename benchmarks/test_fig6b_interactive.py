"""Figure 6(b) — time to recompute a recommendation when the candidate set changes.

The paper starts from a recommendation over S_1000, then adds 10/25/50/100
randomly chosen candidates from S_ALL - S_1000 and asks for a revised
recommendation.  The initial run takes 416 seconds (INUM + build + solve); the
re-tuned runs take 42-55 seconds for up to 50 added candidates and 136 seconds
for 100 — roughly an order of magnitude cheaper, because INUM's cache, the
existing BIP and the previous solution are all reused.

Reproduced shape: re-tuning after adding candidates is several times faster
than the initial run, and its cost grows with the number of added candidates.
"""

from __future__ import annotations

import random

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.reporting import format_table
from repro.workload.generators import generate_homogeneous_workload

_PAPER_SECONDS = {"initial": 416, 10: 42, 25: 47, 50: 55, 100: 136}
#: Added-candidate counts, scaled to the reduced candidate set.
_ADDITIONS = (4, 8, 16, 32)


def _run_fig6b():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[1000], seed=SEED)
    advisor = make_advisor("cophy", schema)

    full = list(advisor.generate_candidates(workload))
    rng = random.Random(SEED)
    rng.shuffle(full)
    held_out = max(_ADDITIONS)
    initial_candidates = advisor.generate_candidates(workload).subset(
        full[:-held_out])
    reserve = full[-held_out:]

    session = advisor.create_session(workload, constraints=[budget],
                                     candidates=initial_candidates)
    initial = session.recommend()
    rows = [{
        "change": "initial",
        "paper seconds": _PAPER_SECONDS["initial"],
        "measured s": round(initial.timings["total"], 3),
        "solve s": round(initial.timings["solve"], 3),
        "build s": round(initial.timings["build"], 3),
        "inum s": round(initial.timings["inum"], 3),
    }]
    retune_times = {}
    previous = 0
    for added, paper_key in zip(_ADDITIONS, (10, 25, 50, 100)):
        new_indexes = reserve[previous:added]
        previous = added
        recommendation = session.add_candidates(new_indexes)
        retune_times[added] = recommendation.timings["total"]
        rows.append({
            "change": f"+{added} candidates",
            "paper seconds": _PAPER_SECONDS[paper_key],
            "measured s": round(recommendation.timings["total"], 3),
            "solve s": round(recommendation.timings["solve"], 3),
            "build s": round(recommendation.timings["build"], 3),
            "inum s": round(recommendation.timings["inum"], 3),
        })
    return rows, initial.timings["total"], retune_times


def test_fig6b_interactive_retuning(benchmark):
    rows, initial_total, retune_times = benchmark.pedantic(_run_fig6b, rounds=1,
                                                           iterations=1)
    print_report("Figure 6(b): re-tuning time after candidate-set changes",
                 format_table(rows))

    # Every re-tune is cheaper than the initial tuning run (no INUM rebuild,
    # only a delta of the BIP), and on average markedly so.
    for added, seconds in retune_times.items():
        assert seconds < initial_total, (
            f"re-tuning with {added} added candidates was not cheaper")
    average_retune = sum(retune_times.values()) / len(retune_times)
    assert average_retune < 0.75 * initial_total
    # The cheapest re-tune is several times cheaper than the initial run.
    assert min(retune_times.values()) < 0.5 * initial_total
