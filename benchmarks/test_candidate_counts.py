"""Section 5.2 observation — number of candidate indexes examined by each advisor.

The paper traces the advisors on W_hom and finds Tool-A using 170 candidates,
Tool-B using 45, and CoPhy examining 1933 — at least an order of magnitude
more, because CGen applies no pruning and the BIP solver does the pruning
instead.

Reproduced shape: CoPhy examines several times more candidates than either
commercial-style advisor while still being the fastest technique.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import run_advisor
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload

_PAPER_COUNTS = {"cophy": 1933, "tool-a": 170, "tool-b": 45}


def _run_candidate_counts():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    evaluation = WhatIfOptimizer(schema)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[1000], seed=SEED)
    rows = []
    counts = {}
    calls = {}
    # The tools' candidate caps are scaled in proportion to the reduced
    # candidate universe (the paper's 170 and 45 are fractions of CoPhy's
    # 1933), otherwise the caps simply never bind at this scale.
    for advisor in (make_advisor("cophy", schema),
                    make_advisor("relaxation", schema, max_candidates=40),
                    make_advisor("dta", schema, max_candidates=12)):
        run = run_advisor(advisor, evaluation, workload, [budget])
        counts[advisor.name] = run.recommendation.candidate_count
        calls[advisor.name] = run.recommendation.whatif_calls
        rows.append({
            "advisor": advisor.name,
            "paper candidates": _PAPER_COUNTS[advisor.name],
            "measured candidates": run.recommendation.candidate_count,
            "whatif calls": run.recommendation.whatif_calls,
            "seconds": round(run.recommendation.total_seconds, 2),
        })
    return rows, counts, calls


def test_candidate_counts(benchmark):
    rows, counts, calls = benchmark.pedantic(_run_candidate_counts, rounds=1,
                                             iterations=1)
    print_report("Candidate indexes examined per advisor (section 5.2)",
                 format_table(rows))

    # CoPhy examines far more candidates than either tool...
    assert counts["cophy"] > 2 * counts["tool-a"]
    assert counts["cophy"] > 4 * counts["tool-b"]
    # ...while spending far fewer what-if optimizer calls (INUM's doing).
    assert calls["cophy"] < calls["tool-a"]
    assert calls["cophy"] < calls["tool-b"]
