"""Figure 6(a) — continuous feedback on the distance from the optimal solution.

The paper plots the solver-reported optimality gap over time for W_250, W_500
and W_1000: the bound drops quickly during the first iterations and then
decreases slowly until the final solution; the DBA can stop early (e.g. at a
5% gap) long before the solver proves optimality.

Reproduced shape: the gap trace produced by the branch-and-bound backend is
monotonically non-increasing, reaches 5% well before the final point, and the
time to reach a 5% gap grows with the workload size.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.reporting import format_table
from repro.core.solver import SolverBackend
from repro.workload.generators import generate_homogeneous_workload


def _run_fig6a():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    rows = []
    traces = {}
    for paper_size, size in WORKLOAD_SIZES.items():
        workload = generate_homogeneous_workload(size, seed=SEED)
        advisor = make_advisor("cophy", schema, backend=SolverBackend.BRANCH_AND_BOUND,
                               gap_tolerance=0.0, time_limit_seconds=60.0)
        recommendation = advisor.tune(workload, constraints=[budget])
        trace = recommendation.gap_trace
        traces[paper_size] = trace
        for point in trace:
            rows.append({
                "paper workload": paper_size,
                "elapsed s": round(point.elapsed_seconds, 3),
                "gap %": round(100 * min(point.gap, 10.0), 2),
                "nodes": point.nodes_explored,
            })
    return rows, traces


def test_fig6a_gap_feedback(benchmark):
    rows, traces = benchmark.pedantic(_run_fig6a, rounds=1, iterations=1)
    print_report("Figure 6(a): optimality-gap feedback over time",
                 format_table(rows))

    time_to_5_percent = {}
    for paper_size, trace in traces.items():
        assert trace, f"no gap trace for workload {paper_size}"
        gaps = [point.gap for point in trace]
        # The reported distance from the optimum never increases.
        assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:]))
        # The final solution is within the 5% early-termination threshold.
        assert gaps[-1] <= 0.05 + 1e-9
        reached = [point.elapsed_seconds for point in trace if point.gap <= 0.05]
        time_to_5_percent[paper_size] = reached[0] if reached else float("inf")
    # Larger workloads take longer to reach the early-termination threshold.
    assert (time_to_5_percent[1000]
            >= 0.5 * time_to_5_percent[250])
