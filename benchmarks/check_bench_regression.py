#!/usr/bin/env python
"""Diff a fresh ``BENCH_inum.json`` against the committed perf trajectory.

The benchmark suite writes machine-readable per-benchmark metrics
(``benchmarks/conftest.py``); ``benchmarks/bench_baseline.json`` commits a
snapshot of them as the perf trajectory.  This script compares the ratio-like
metrics of a fresh run against that baseline and exits non-zero when any of
them regressed by more than the tolerance (default 20%), so CI catches perf
regressions instead of only archiving the artifact.

Only *ratio* metrics are compared — raw millisecond numbers shift with the
runner's hardware, while speedup ratios measure one machine against itself:

* keys ending in ``speedup`` and ``call_reduction`` are higher-is-better;
* keys ending in ``cost_ratio`` are lower-is-better.

The committed baseline stores deliberately *conservative* trajectory values
for high-variance micro-metrics (sub-0.1 ms denominators swing tens of
percent with timer noise), not raw snapshots of one machine: the gate exists
to catch real erosion across PRs, not runner jitter.  Raise a baseline value
only when a PR genuinely moves the trajectory and the new level has been
observed on more than one run.

Usage::

    python benchmarks/check_bench_regression.py \
        --fresh BENCH_inum.json --baseline benchmarks/bench_baseline.json

Updating the baseline
---------------------

When a PR genuinely moves the perf trajectory (a new benchmark lands, or a
real optimisation shifts a ratio), refresh the committed snapshot with::

    python benchmarks/check_bench_regression.py \
        --fresh BENCH_inum.json --baseline benchmarks/bench_baseline.json \
        --update-baseline [--margin 0.15]

``--update-baseline`` rewrites the baseline's *tracked ratio metrics* (and
adds metrics/benchmarks the baseline has never seen) from the fresh run;
non-ratio keys and the rest of the file are left untouched.  ``--margin``
writes conservative values — a higher-is-better metric is recorded at
``fresh * (1 - margin)``, a lower-is-better one at ``fresh * (1 + margin)``
(default 0.15) — because the gate exists to catch real erosion across PRs,
not runner jitter.  Only update deliberately: run the benchmarks more than
once, confirm the new level is stable, and mention the update in the PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metric-key suffixes compared, mapped to their direction.
HIGHER_IS_BETTER = ("speedup", "call_reduction")
LOWER_IS_BETTER = ("cost_ratio",)
#: Ratio metrics that are configuration, not measurement (never compared).
EXCLUDED = ("target_speedup", "quality_bound")


def _comparable(key: str) -> str | None:
    """``"higher"`` / ``"lower"`` for tracked metric keys, else ``None``."""
    if key.endswith(EXCLUDED):
        return None
    if key.endswith(HIGHER_IS_BETTER):
        return "higher"
    if key.endswith(LOWER_IS_BETTER):
        return "lower"
    return None


def compare(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty when the fresh run holds the trajectory)."""
    problems: list[str] = []
    fresh_results = fresh.get("results", {})
    for benchmark, metrics in sorted(baseline.get("results", {}).items()):
        fresh_metrics = fresh_results.get(benchmark)
        if fresh_metrics is None:
            problems.append(f"{benchmark}: missing from the fresh run")
            continue
        for key, base_value in sorted(metrics.items()):
            direction = _comparable(key)
            if direction is None or not isinstance(base_value, (int, float)):
                continue
            fresh_value = fresh_metrics.get(key)
            if not isinstance(fresh_value, (int, float)):
                problems.append(f"{benchmark}.{key}: missing from the fresh run")
                continue
            if direction == "higher":
                floor = base_value * (1.0 - tolerance)
                if fresh_value < floor:
                    problems.append(
                        f"{benchmark}.{key}: {fresh_value:g} < {floor:g} "
                        f"(baseline {base_value:g}, tolerance {tolerance:.0%})")
            else:
                ceiling = base_value * (1.0 + tolerance)
                if fresh_value > ceiling:
                    problems.append(
                        f"{benchmark}.{key}: {fresh_value:g} > {ceiling:g} "
                        f"(baseline {base_value:g}, tolerance {tolerance:.0%})")
    return problems


def update_baseline(fresh: dict, baseline: dict, margin: float) -> int:
    """Rewrite the baseline's tracked ratio metrics from a fresh run.

    Returns the number of metric values written.  Conservative by
    construction: higher-is-better values are recorded ``margin`` below the
    fresh measurement, lower-is-better values ``margin`` above it, so normal
    runner jitter on the next run cannot trip the gate.
    """
    if margin < 0 or margin >= 1:
        raise ValueError("--margin must be in [0, 1)")
    written = 0
    results = baseline.setdefault("results", {})
    for benchmark, metrics in sorted(fresh.get("results", {}).items()):
        target = results.setdefault(benchmark, {})
        for key, value in sorted(metrics.items()):
            direction = _comparable(key)
            if direction is None or not isinstance(value, (int, float)):
                continue
            if direction == "higher":
                target[key] = round(value * (1.0 - margin), 4)
            else:
                target[key] = round(value * (1.0 + margin), 4)
            written += 1
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, type=Path,
                        help="BENCH_inum.json written by the fresh run")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed trajectory (benchmarks/bench_baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed relative regression (default 0.2 = 20%%)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline's tracked ratio metrics "
                             "from the fresh run instead of gating (see the "
                             "module docstring for when this is appropriate)")
    parser.add_argument("--margin", type=float, default=0.15,
                        help="conservative margin applied by --update-baseline "
                             "(default 0.15 = record 15%% inside the fresh "
                             "measurement)")
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))

    if args.update_baseline:
        written = update_baseline(fresh, baseline, args.margin)
        args.baseline.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                                 + "\n", encoding="utf-8")
        print(f"Baseline updated: {written} ratio metric(s) written to "
              f"{args.baseline} with a {args.margin:.0%} conservative margin. "
              f"Commit the file only if the new level is stable across runs.")
        return 0

    problems = compare(fresh, baseline, args.tolerance)
    if problems:
        print("Benchmark trajectory regressions:")
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    tracked = sum(
        1 for metrics in baseline.get("results", {}).values()
        for key, value in metrics.items()
        if _comparable(key) is not None and isinstance(value, (int, float)))
    print(f"Benchmark trajectory holds: {tracked} ratio metric(s) within "
          f"{args.tolerance:.0%} of the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
