"""Shared configuration for the per-figure benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (section 5 and appendix C).  The experiments run at a
reduced, laptop-friendly scale that preserves the qualitative shape of the
results:

* the 1 GB TPC-H database becomes a scale-factor-0.01 statistics-only catalog
  (data skew ``z`` is reproduced analytically);
* the 250/500/1000-statement workloads become 15/30/60-statement workloads
  drawn from the same generators;
* CPLEX becomes the bundled branch-and-bound / HiGHS MILP backends.

Each benchmark prints the rows/series corresponding to the paper's table or
figure (run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
asserts the qualitative claims (who wins, how the trend moves).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.catalog.tpch import tpch_schema
from repro.core.constraints import StorageBudgetConstraint

#: Mapping from the paper's workload sizes to the reduced sizes used here.
WORKLOAD_SIZES = {250: 15, 500: 30, 1000: 60}
#: TPC-H scale factor used by all benchmarks (the paper uses 1.0 = 1 GB).
SCALE_FACTOR = 0.01
#: Random seed shared by the benchmark workloads.
SEED = 42


def make_schema(skew: float = 0.0):
    """The benchmark catalog at the standard scale factor."""
    return tpch_schema(scale_factor=SCALE_FACTOR, skew=skew)


def storage_budget(schema, fraction: float = 1.0) -> StorageBudgetConstraint:
    """The paper's space budget: a fraction ``M`` of the data size."""
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


def print_report(title: str, text: str) -> None:
    """Print a benchmark report block (visible with ``pytest -s``)."""
    print(f"\n==== {title} ====\n{text}\n")


#: Machine-readable benchmark results collected during the session, keyed by
#: benchmark name.  Written to ``BENCH_inum.json`` at session end so CI can
#: archive the perf trajectory across PRs.
_BENCH_RESULTS: dict[str, dict] = {}


@pytest.fixture
def bench_record():
    """Record one benchmark's metrics into the machine-readable report.

    Usage: ``bench_record("workload_cost_tensor", speedup=7.3, ...)`` —
    values should be plain numbers/strings (JSON-serializable).
    """
    def record(benchmark: str, **metrics) -> None:
        _BENCH_RESULTS[benchmark] = metrics
    return record


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_inum.json`` when any benchmark recorded metrics.

    The target path can be overridden with ``BENCH_REPORT_PATH``; the file
    is git-ignored and uploaded as a CI artifact by the full-suite lane.
    """
    if not _BENCH_RESULTS:
        return
    path = os.environ.get("BENCH_REPORT_PATH") or str(
        Path(__file__).resolve().parent.parent / "BENCH_inum.json")
    payload = {
        "schema_version": 1,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "results": dict(sorted(_BENCH_RESULTS.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def pytest_collection_modifyitems(config, items):
    """Every per-figure benchmark is heavyweight: mark it ``slow``.

    The fast lane (``pytest -m "not slow"``) then runs only the unit suite;
    the full default invocation is unchanged.  (The hook sees the whole
    session's items, so restrict the marker to this directory.)
    """
    bench_dir = Path(__file__).parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def uniform_schema():
    return make_schema(0.0)


@pytest.fixture(scope="session")
def skewed_schema():
    return make_schema(2.0)
