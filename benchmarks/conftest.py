"""Shared configuration for the per-figure benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (section 5 and appendix C).  The experiments run at a
reduced, laptop-friendly scale that preserves the qualitative shape of the
results:

* the 1 GB TPC-H database becomes a scale-factor-0.01 statistics-only catalog
  (data skew ``z`` is reproduced analytically);
* the 250/500/1000-statement workloads become 15/30/60-statement workloads
  drawn from the same generators;
* CPLEX becomes the bundled branch-and-bound / HiGHS MILP backends.

Each benchmark prints the rows/series corresponding to the paper's table or
figure (run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
asserts the qualitative claims (who wins, how the trend moves).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.catalog.tpch import tpch_schema
from repro.core.constraints import StorageBudgetConstraint

#: Mapping from the paper's workload sizes to the reduced sizes used here.
WORKLOAD_SIZES = {250: 15, 500: 30, 1000: 60}
#: TPC-H scale factor used by all benchmarks (the paper uses 1.0 = 1 GB).
SCALE_FACTOR = 0.01
#: Random seed shared by the benchmark workloads.
SEED = 42


def make_schema(skew: float = 0.0):
    """The benchmark catalog at the standard scale factor."""
    return tpch_schema(scale_factor=SCALE_FACTOR, skew=skew)


def storage_budget(schema, fraction: float = 1.0) -> StorageBudgetConstraint:
    """The paper's space budget: a fraction ``M`` of the data size."""
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


def print_report(title: str, text: str) -> None:
    """Print a benchmark report block (visible with ``pytest -s``)."""
    print(f"\n==== {title} ====\n{text}\n")


def pytest_collection_modifyitems(config, items):
    """Every per-figure benchmark is heavyweight: mark it ``slow``.

    The fast lane (``pytest -m "not slow"``) then runs only the unit suite;
    the full default invocation is unchanged.  (The hook sees the whole
    session's items, so restrict the marker to this directory.)
    """
    bench_dir = Path(__file__).parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def uniform_schema():
    return make_schema(0.0)


@pytest.fixture(scope="session")
def skewed_schema():
    return make_schema(2.0)
