"""Figure 8 (appendix C.1) — quality ratio vs. space budget (0.5x, 1x, 2x data size).

Paper values (ratio of speedups on W_hom_1000, z = 0):

    CoPhyA / Tool-A:  0.5 -> 1.85   1 -> 1.97   2 -> 1.09
    CoPhyB / Tool-B:  0.5 -> 1.02   1 -> 1.03   2 -> 1.03

Reproduced shape: CoPhy is at least as good as both tools at every budget, and
the advantage over the Tool-A-like advisor shrinks as the budget grows (with a
looser budget even a weak search finds enough good indexes).
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import compare_advisors
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload

_PAPER_RATIOS = {
    0.5: {"tool-a": 1.85, "tool-b": 1.02},
    1.0: {"tool-a": 1.97, "tool-b": 1.03},
    2.0: {"tool-a": 1.09, "tool-b": 1.03},
}


def _run_fig8():
    schema = make_schema(0.0)
    evaluation = WhatIfOptimizer(schema)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[1000], seed=SEED)
    rows = []
    ratios: dict[float, dict[str, float]] = {}
    for fraction in (0.5, 1.0, 2.0):
        budget = storage_budget(schema, fraction)
        result = compare_advisors(
            [make_advisor("cophy", schema), make_advisor("relaxation", schema), make_advisor("dta", schema)],
            evaluation, workload, [budget], name=f"fig8-M{fraction}")
        ratios[fraction] = {
            "tool-a": result.perf_ratio("cophy", "tool-a"),
            "tool-b": result.perf_ratio("cophy", "tool-b"),
        }
        rows.append({
            "space budget M": fraction,
            "CoPhy/Tool-A (paper)": _PAPER_RATIOS[fraction]["tool-a"],
            "CoPhy/Tool-A (measured)": round(ratios[fraction]["tool-a"], 2),
            "CoPhy/Tool-B (paper)": _PAPER_RATIOS[fraction]["tool-b"],
            "CoPhy/Tool-B (measured)": round(ratios[fraction]["tool-b"], 2),
        })
    return rows, ratios


def test_fig8_space_budget(benchmark):
    rows, ratios = benchmark.pedantic(_run_fig8, rounds=1, iterations=1)
    print_report("Figure 8: quality ratios across space budgets", format_table(rows))

    for fraction, values in ratios.items():
        assert values["tool-a"] >= 0.95, f"Tool-A beat CoPhy at M={fraction}"
        assert values["tool-b"] >= 0.95, f"Tool-B beat CoPhy at M={fraction}"
