"""Data-skew result (appendix C.1 text) — quality at z = 1 and the effect of skew.

The paper reports for z = 1, W_hom_1000: Tool-A 67% vs. CoPhyA 92% speedup,
and Tool-B 96.9% vs. CoPhyB 98.1%; combined with Table 1 (z = 0 and z = 2) the
qualitative claim is that skewed data makes *all* advisors better (selective
indexes become very beneficial) while CoPhy stays ahead.

Reproduced shape: every advisor's speedup improves monotonically (or at least
does not degrade) as the skew grows from 0 to 2, and CoPhy remains at least as
good as both tools at every skew level.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import compare_advisors
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload

_PAPER_Z1 = {"tool-a": 67.0, "cophy": 92.0, "tool-b": 96.9}


def _run_skew():
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[1000], seed=SEED)
    rows = []
    speedups: dict[float, dict[str, float]] = {}
    for skew in (0.0, 1.0, 2.0):
        schema = make_schema(skew)
        evaluation = WhatIfOptimizer(schema)
        budget = storage_budget(schema, 1.0)
        result = compare_advisors(
            [make_advisor("cophy", schema), make_advisor("relaxation", schema), make_advisor("dta", schema)],
            evaluation, workload, [budget], name=f"skew-{skew}")
        speedups[skew] = {run.advisor_name: run.speedup_percent
                          for run in result.runs}
        for run in result.runs:
            rows.append({
                "skew z": skew,
                "advisor": run.advisor_name,
                "paper speedup % (z=1)": _PAPER_Z1[run.advisor_name]
                if skew == 1.0 else "-",
                "measured speedup %": round(run.speedup_percent, 1),
            })
    return rows, speedups


def test_skew_quality(benchmark):
    rows, speedups = benchmark.pedantic(_run_skew, rounds=1, iterations=1)
    print_report("Data skew: quality at z = 0 / 1 / 2 (W_hom)", format_table(rows))

    for skew, values in speedups.items():
        assert values["cophy"] >= values["tool-a"] - 1.0
        assert values["cophy"] >= values["tool-b"] - 1.0
    # Skew makes good indexes more beneficial: every advisor improves from
    # z = 0 to z = 2.
    for advisor in ("cophy", "tool-a", "tool-b"):
        assert speedups[2.0][advisor] >= speedups[0.0][advisor] - 2.0
