"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the impact of three implementation
choices of the reproduction:

* the Lagrangian-style relaxation of the slot-assignment constraints
  (section 4.1 of the paper) versus solving the raw Theorem-1 BIP;
* the pure-Python branch-and-bound backend versus the scipy/HiGHS MILP
  backend;
* INUM's cost approximation versus direct what-if optimization (accuracy and
  optimizer-call counts) — the premise the whole BIP formulation rests on.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import run_advisor
from repro.bench.metrics import baseline_configuration
from repro.bench.reporting import format_table
from repro.core.solver import SolverBackend
from repro.indexes.candidate_generation import CandidateGenerator
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload


def _run_relaxation_ablation():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[500], seed=SEED)
    rows = []
    results = {}
    for label, apply_relaxation in (("raw BIP", False), ("relaxed BIP", True)):
        advisor = make_advisor("cophy", schema, apply_relaxation=apply_relaxation,
                               gap_tolerance=0.0)
        recommendation = advisor.tune(workload, constraints=[budget])
        results[label] = recommendation
        rows.append({
            "variant": label,
            "objective": round(recommendation.objective_estimate, 1),
            "indexes": recommendation.index_count,
            "solve s": round(recommendation.timings["solve"], 3),
        })
    return rows, results


def test_ablation_relaxation(benchmark):
    rows, results = benchmark.pedantic(_run_relaxation_ablation, rounds=1,
                                       iterations=1)
    print_report("Ablation: Lagrangian-style relaxation of slot constraints",
                 format_table(rows))
    # The relaxation must not change the quality of the recommendation.
    assert results["relaxed BIP"].objective_estimate == pytest.approx(
        results["raw BIP"].objective_estimate, rel=1e-6)


def _run_backend_ablation():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[500], seed=SEED)
    rows = []
    results = {}
    for label, backend in (("milp (HiGHS)", SolverBackend.MILP),
                           ("branch-and-bound", SolverBackend.BRANCH_AND_BOUND)):
        advisor = make_advisor("cophy", schema, backend=backend, gap_tolerance=0.05,
                               time_limit_seconds=120.0)
        recommendation = advisor.tune(workload, constraints=[budget])
        results[label] = recommendation
        rows.append({
            "backend": label,
            "objective": round(recommendation.objective_estimate, 1),
            "gap": round(recommendation.gap, 4),
            "solve s": round(recommendation.timings["solve"], 3),
            "gap-trace points": len(recommendation.gap_trace),
        })
    return rows, results


def test_ablation_solver_backend(benchmark):
    rows, results = benchmark.pedantic(_run_backend_ablation, rounds=1,
                                       iterations=1)
    print_report("Ablation: MILP backend vs pure-Python branch and bound",
                 format_table(rows))
    milp = results["milp (HiGHS)"]
    bnb = results["branch-and-bound"]
    # Both backends land within the early-termination gap of each other.
    assert bnb.objective_estimate <= milp.objective_estimate * 1.06 + 1e-6
    assert milp.objective_estimate <= bnb.objective_estimate * 1.06 + 1e-6
    # Only the branch-and-bound backend provides the interactive gap trace.
    assert bnb.gap_trace and not milp.gap_trace


def _run_inum_ablation():
    schema = make_schema(0.0)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[250], seed=SEED)
    optimizer = WhatIfOptimizer(schema)
    inum = InumCache(optimizer)
    candidates = CandidateGenerator(schema).generate(workload)
    configuration = baseline_configuration(schema).union(list(candidates)[:12])

    inum.build_workload(workload)
    build_calls = inum.template_build_calls

    rows = []
    errors = []
    direct_calls_before = optimizer.whatif_calls
    for statement in workload:
        inum_cost = inum.statement_cost(statement.query, configuration)
        true_cost = optimizer.statement_cost(statement.query, configuration)
        error = abs(inum_cost - true_cost) / max(true_cost, 1e-9)
        errors.append(error)
    direct_calls = optimizer.whatif_calls - direct_calls_before
    rows.append({
        "metric": "INUM template-build optimizer calls",
        "value": build_calls,
    })
    rows.append({
        "metric": "direct what-if calls for the same evaluation",
        "value": direct_calls,
    })
    rows.append({
        "metric": "mean relative cost error",
        "value": round(sum(errors) / len(errors), 4),
    })
    rows.append({
        "metric": "max relative cost error",
        "value": round(max(errors), 4),
    })
    return rows, errors, build_calls, direct_calls


def _run_tool_a_inum_ablation():
    """Tool-A's greedy/relaxation search: black-box what-if vs INUM costing.

    The ROADMAP open item: ``make_advisor("relaxation", inum=...)`` exists but the
    per-figure benchmarks keep the paper-faithful black-box path.  This
    ablation runs both variants on the same workload/seed and quantifies the
    trade: the INUM-backed search answers its thousands of cost probes from
    the workload gamma tensor (orders of magnitude fewer optimizer calls)
    while recommending a configuration of comparable quality — the
    approximation it introduces is exactly the one CoPhy itself rests on.
    """
    schema = make_schema(0.0)
    budget = storage_budget(schema, 0.5)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[500], seed=SEED)
    evaluation = WhatIfOptimizer(schema)

    def black_box():
        return make_advisor("relaxation", schema, seed=SEED)

    def inum_backed():
        optimizer = WhatIfOptimizer(schema)
        return make_advisor("relaxation", schema, optimizer=optimizer, seed=SEED,
                                 inum=InumCache(optimizer))

    rows = []
    runs = {}
    for label, factory in (("black-box what-if", black_box),
                           ("INUM tensor", inum_backed)):
        run = run_advisor(factory(), evaluation, workload, [budget])
        runs[label] = run
        rows.append({
            "variant": label,
            "perf %": round(run.speedup_percent, 2),
            "indexes": run.recommendation.index_count,
            "whatif_calls": run.recommendation.whatif_calls,
            "seconds": round(run.wall_seconds, 3),
        })
    return rows, runs


def test_ablation_tool_a_inum_costing(benchmark, bench_record):
    rows, runs = benchmark.pedantic(_run_tool_a_inum_ablation, rounds=1,
                                    iterations=1)
    print_report("Ablation: Tool-A relaxation search, black-box vs INUM costing",
                 format_table(rows))
    black_box = runs["black-box what-if"]
    inum_backed = runs["INUM tensor"]
    bench_record(
        "tool_a_inum_ablation",
        black_box_perf=round(black_box.perf, 4),
        inum_perf=round(inum_backed.perf, 4),
        black_box_whatif_calls=black_box.recommendation.whatif_calls,
        inum_whatif_calls=inum_backed.recommendation.whatif_calls,
        black_box_seconds=round(black_box.wall_seconds, 4),
        inum_seconds=round(inum_backed.wall_seconds, 4),
        call_reduction=round(
            black_box.recommendation.whatif_calls
            / max(1, inum_backed.recommendation.whatif_calls), 2),
    )
    # Ground-truth quality must stay comparable: INUM is an approximation of
    # the same optimizer, not a different cost model.
    assert inum_backed.perf >= black_box.perf - 0.10
    # The INUM-backed search must deliver the order-of-magnitude reduction in
    # optimizer calls that motivates it (template builds included).
    assert (inum_backed.recommendation.whatif_calls
            <= black_box.recommendation.whatif_calls / 5)


def test_ablation_inum_accuracy(benchmark):
    rows, errors, build_calls, direct_calls = benchmark.pedantic(
        _run_inum_ablation, rounds=1, iterations=1)
    print_report("Ablation: INUM approximation vs direct what-if optimization",
                 format_table(rows))
    # INUM stays accurate enough for index tuning (paper: "minimal to no loss").
    assert sum(errors) / len(errors) < 0.15
    assert max(errors) < 0.60
    # And its one-off build cost is of the same order as a single evaluation
    # pass, while it can afterwards cost arbitrarily many configurations for free.
    assert build_calls <= 4 * direct_calls
