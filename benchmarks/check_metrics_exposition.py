#!/usr/bin/env python
"""Validate a ``/v1/metrics`` scrape as Prometheus text exposition.

Two modes:

* default — read an exposition document from stdin (or ``--file``) and
  validate it;
* ``--live`` — start an in-process :class:`TuningServer` on an ephemeral
  port, serve one small tuning request through the HTTP client, scrape
  ``GET /v1/metrics`` over real HTTP, and validate the response: content
  type, text grammar, and the presence of the request/solver/cache/HTTP
  series the dashboard relies on.

CI runs the ``--live`` mode in the server-smoke lane, so a malformed
exposition (or a silently vanished series) fails the build rather than the
first scrape in production.

Usage::

    python benchmarks/check_metrics_exposition.py --live
    curl -s $SERVER/v1/metrics | python benchmarks/check_metrics_exposition.py
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: ``name{labels} value`` — the sample-line grammar we emit (no timestamps).
SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' (?P<value>-?[0-9.e+-]+|[+-]Inf|NaN)$')

#: Series the tuning dashboard depends on; each must appear in a live scrape
#: after one served request (as a sample, not just a declared family).
REQUIRED_LIVE_SERIES = (
    "repro_requests_total",
    "repro_request_seconds_count",
    "repro_solver_solves_total",
    "repro_cache_events_total",
    "repro_http_requests_total",
    "repro_http_request_seconds_count",
    "repro_lock_wait_seconds_count",
    "repro_queue_wait_seconds_count",
)


def validate_exposition(text: str) -> list[str]:
    """Grammar problems in an exposition document (empty = valid)."""
    problems: list[str] = []
    if not text.endswith("\n"):
        problems.append("document must end with a newline")
    typed: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                problems.append(f"line {number}: truncated comment: {line!r}")
            elif parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    problems.append(
                        f"line {number}: unknown metric type {parts[3]!r}")
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {number}: malformed comment: {line!r}")
            continue
        match = SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(
                f"line {number}: sample {name!r} has no # TYPE header")
    return problems


def scrape_live() -> tuple[str, str]:
    """Serve one request through a live server; return (content_type, body)."""
    import time
    from urllib.request import urlopen

    from repro.api import TuningRequest
    from repro.catalog.tpch import tpch_schema
    from repro.core.constraints import StorageBudgetConstraint
    from repro.server.app import TuningServer
    from repro.server.client import TuningClient
    from repro.workload.generators import generate_homogeneous_workload

    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(8, seed=7)
    request = TuningRequest(
        workload=workload, schema=schema,
        constraints=[StorageBudgetConstraint.from_fraction_of_data(
            schema, 1.0)])
    with TuningServer(namespace_statements=True) as server:
        client = TuningClient(server.url)
        client.tune(request)
        # A one-request batch goes through the service's thread pool, which
        # is the only path that records repro_queue_wait_seconds samples.
        client.tune_many([request])
        # The tune handler records its HTTP counters *after* writing the
        # response body, so give that finally-block a moment to land.
        for _ in range(50):
            with urlopen(server.url + "/v1/metrics") as response:
                content_type = response.headers["Content-Type"]
                text = response.read().decode("utf-8")
            if "repro_http_requests_total{" in text:
                break
            time.sleep(0.1)
        return content_type, text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--live", action="store_true",
                        help="start an in-process server, tune once, scrape "
                             "/v1/metrics over HTTP and validate it")
    parser.add_argument("--file", type=Path, default=None,
                        help="read the exposition from a file instead of "
                             "stdin")
    args = parser.parse_args(argv)

    required: tuple[str, ...] = ()
    if args.live:
        from repro.obs.metrics import METRICS_CONTENT_TYPE

        content_type, text = scrape_live()
        if content_type != METRICS_CONTENT_TYPE:
            print(f"FAIL bad content type: {content_type!r}")
            return 1
        required = REQUIRED_LIVE_SERIES
    elif args.file is not None:
        text = args.file.read_text(encoding="utf-8")
    else:
        text = sys.stdin.read()

    problems = validate_exposition(text)
    sample_lines = [line for line in text.splitlines()
                    if line and not line.startswith("#")]
    for series in required:
        if not any(line.startswith(series) for line in sample_lines):
            problems.append(f"required series {series!r} has no samples")
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print(f"Exposition OK: {len(sample_lines)} sample(s), "
          f"{sum(1 for line in text.splitlines() if line.startswith('# TYPE'))} "
          f"family(ies).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
