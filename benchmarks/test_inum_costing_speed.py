"""Microbenchmark: vectorized gamma-matrix costing vs the per-call loop path.

The tentpole claim of the vectorization PR: ``InumCache.workload_cost`` on a
50-query x 100-candidate TPC-H workload is at least 5x faster when answered
through the dense per-query gamma matrices than through the Python-level
per-(template, table, index) loops, while returning bit-identical costs.

Both caches share one what-if optimizer (and therefore one scan cache), and
both are fully warmed before timing, so the measurement isolates the cost of
the reduction itself — exactly the operation advisors repeat thousands of
times per tuning session.
"""

from __future__ import annotations

import time

from repro.catalog.tpch import tpch_schema
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload

from benchmarks.conftest import print_report

QUERY_COUNT = 50
CANDIDATE_COUNT = 100
TARGET_SPEEDUP = 5.0
REPEATS = 5
ROUNDS = 3


def _best_seconds(fn, repeats: int = REPEATS, rounds: int = ROUNDS) -> float:
    """Best mean-of-``repeats`` over ``rounds`` (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - started) / repeats)
    return best


def test_workload_cost_gamma_matrix_speedup(bench_record):
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(QUERY_COUNT, seed=11)
    optimizer = WhatIfOptimizer(schema)
    candidates = CandidateGenerator(schema).generate(workload)
    assert len(candidates) >= CANDIDATE_COUNT
    configuration = Configuration(list(candidates)[:CANDIDATE_COUNT],
                                  name="speed-bench")

    vectorized = InumCache(optimizer)
    loop_based = InumCache(optimizer, use_gamma_matrix=False)
    vectorized.prepare(workload, configuration)
    loop_based.build_workload(workload)

    # Warm both paths end to end and check the headline correctness claim:
    # the two implementations agree bit for bit.
    fast_cost = vectorized.workload_cost(workload, configuration)
    slow_cost = loop_based.workload_cost(workload, configuration)
    assert fast_cost == slow_cost
    for statement in workload:
        assert (vectorized.statement_cost(statement.query, configuration)
                == loop_based.statement_cost(statement.query, configuration))

    slow_seconds = _best_seconds(
        lambda: loop_based.workload_cost(workload, configuration))
    fast_seconds = _best_seconds(
        lambda: vectorized.workload_cost(workload, configuration))
    speedup = slow_seconds / fast_seconds

    print_report(
        "INUM costing microbenchmark (gamma matrix vs per-call loops)",
        f"workload: {QUERY_COUNT} TPC-H statements, "
        f"{CANDIDATE_COUNT}-index configuration\n"
        f"loop path:   {slow_seconds * 1e3:8.3f} ms / workload_cost\n"
        f"matrix path: {fast_seconds * 1e3:8.3f} ms / workload_cost\n"
        f"speedup:     {speedup:8.1f}x (target >= {TARGET_SPEEDUP:.0f}x)")

    bench_record(
        "inum_costing_gamma_matrix",
        queries=QUERY_COUNT,
        candidates=CANDIDATE_COUNT,
        loop_ms=round(slow_seconds * 1e3, 4),
        matrix_ms=round(fast_seconds * 1e3, 4),
        speedup=round(speedup, 2),
        target_speedup=TARGET_SPEEDUP,
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized workload_cost only {speedup:.1f}x faster "
        f"(expected >= {TARGET_SPEEDUP}x)")
