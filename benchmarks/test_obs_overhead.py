"""Guard: the observability layer must be (nearly) free.

The PR-8 contract: tracing spans plus the metrics registry add at most 5%
end-to-end latency to a 200-statement tuning request.  Spans cost one
contextvar read when no tracer is active and a dict append when one is;
metrics are recorded per *stage* (never per node / per cost lookup), so the
solve itself dominates either way.

Both modes run through fully warmed schema contexts (separate tuners, same
request) and are timed best-of-``ROUNDS`` to shed scheduler noise; the
traced/untraced ratio lands in ``BENCH_inum.json`` as
``overhead_cost_ratio`` so the CI trajectory gate catches erosion.
"""

from __future__ import annotations

import time

from repro.api import Tuner, TuningRequest
from repro.workload.generators import generate_homogeneous_workload

from benchmarks.conftest import SEED, make_schema, print_report, storage_budget

STATEMENTS = 200
#: The tentpole bound: observability may cost at most 5% end to end.
TARGET_OVERHEAD = 1.05
ROUNDS = 3


def _best_tune_seconds(tuner: Tuner, request: TuningRequest,
                       rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        tuner.tune(request)
        best = min(best, time.perf_counter() - started)
    return best


def test_observability_overhead_is_bounded(bench_record):
    schema = make_schema()
    workload = generate_homogeneous_workload(STATEMENTS, seed=SEED)
    request = TuningRequest(workload=workload, schema=schema,
                            constraints=[storage_budget(schema)])

    traced, untraced = Tuner(tracing=True), Tuner(tracing=False)
    # Warm both tuners' schema contexts (what-if scans, INUM templates,
    # gamma matrices) so the timed runs isolate pipeline + solve.
    traced.tune(request)
    untraced.tune(request)

    traced_s = _best_tune_seconds(traced, request)
    untraced_s = _best_tune_seconds(untraced, request)
    ratio = traced_s / untraced_s

    print_report(
        "Observability overhead (tracing + metrics vs off)",
        f"statements={STATEMENTS}  untraced={untraced_s * 1000:.1f} ms  "
        f"traced={traced_s * 1000:.1f} ms  ratio={ratio:.3f}  "
        f"(target <= {TARGET_OVERHEAD})")
    bench_record("observability_overhead",
                 statements=STATEMENTS,
                 untraced_ms=round(untraced_s * 1000, 2),
                 traced_ms=round(traced_s * 1000, 2),
                 overhead_cost_ratio=round(ratio, 4),
                 overhead_budget=TARGET_OVERHEAD)

    assert ratio <= TARGET_OVERHEAD, (
        f"tracing+metrics cost {ratio:.3f}x the untraced pipeline "
        f"(budget {TARGET_OVERHEAD}x)")


def test_introspection_defaults_overhead_is_bounded(bench_record):
    """PR 10's default knobs (trace store + wait accounting + per-span CPU
    clocks, profiling *off*) must stay inside the same 5% budget.

    ``profile_every=None`` is the default and the contract: sampled cProfile
    captures are opt-in precisely because they do not fit this budget.
    """
    schema = make_schema()
    workload = generate_homogeneous_workload(STATEMENTS, seed=SEED)
    request = TuningRequest(workload=workload, schema=schema,
                            constraints=[storage_budget(schema)])

    introspected = Tuner(trace_store_size=128, slow_threshold_ms=250.0)
    bare = Tuner(tracing=False, trace_store_size=0)
    introspected.tune(request)
    bare.tune(request)

    introspected_s = _best_tune_seconds(introspected, request)
    bare_s = _best_tune_seconds(bare, request)
    ratio = introspected_s / bare_s

    print_report(
        "Introspection overhead (trace store + wait accounting vs off)",
        f"statements={STATEMENTS}  bare={bare_s * 1000:.1f} ms  "
        f"introspected={introspected_s * 1000:.1f} ms  ratio={ratio:.3f}  "
        f"(target <= {TARGET_OVERHEAD})")
    bench_record("introspection_overhead",
                 statements=STATEMENTS,
                 bare_ms=round(bare_s * 1000, 2),
                 introspected_ms=round(introspected_s * 1000, 2),
                 introspection_cost_ratio=round(ratio, 4),
                 overhead_budget=TARGET_OVERHEAD)

    assert ratio <= TARGET_OVERHEAD, (
        f"default introspection costs {ratio:.3f}x the bare pipeline "
        f"(budget {TARGET_OVERHEAD}x)")
