"""Microbenchmark: workload-tensor costing vs the per-query gamma-matrix loop.

The tentpole claim of the workload-tensor PR: ``InumCache.workload_cost`` on
a 50-query x 100-candidate TPC-H workload is at least 5x faster when answered
through the stacked workload gamma tensor than through the per-query Python
loop (PR 1's path: one ``QueryGammaMatrix.cost`` call per statement), while
returning bit-identical costs on every tested configuration.

The timed pattern mirrors configuration-enumeration loops (knapsack greedies,
relaxation searches): every ``workload_cost`` call probes a *fresh, distinct*
configuration, so neither side benefits from its per-configuration memo — the
measurement isolates the stacked reduction against the per-query loop.  The
memoized (repeated-configuration) pattern is reported as well.

A second check builds the same gamma matrices serially and with the parallel
``build_workers`` pool and asserts the results are identical.  The build is
pure-Python optimizer work, so threads only help where the interpreter
releases the GIL — the benchmark asserts non-regression and records the
measured ratio for the CI trajectory rather than demanding a speedup the
hardware (or a single-core runner) cannot deliver.
"""

from __future__ import annotations

import gc
import os
import random
import time

import numpy as np

from repro.catalog.tpch import tpch_schema
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload
from repro.workload.workload import Workload

from benchmarks.conftest import print_report

QUERY_COUNT = 50
CANDIDATE_COUNT = 100
TARGET_SPEEDUP = 5.0
#: Fresh configurations timed per side (no memo hits on either path).
COLD_PROBES = 150
#: Distinct configurations in the repeated (memoized) probe pool.
WARM_POOL = 40
WARM_ROUNDS = 3


def _per_query_workload_cost(inum: InumCache, workload: Workload,
                             configuration: Configuration) -> float:
    """PR 1's ``workload_cost``: a Python loop over per-query matrix costings."""
    total = 0.0
    for statement in workload:
        total += statement.weight * inum.statement_cost(statement.query,
                                                        configuration)
    return total


def _setup():
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(QUERY_COUNT, seed=11)
    optimizer = WhatIfOptimizer(schema)
    candidates = list(CandidateGenerator(schema).generate(workload))
    assert len(candidates) >= CANDIDATE_COUNT
    pool = candidates[:CANDIDATE_COUNT]
    inum = InumCache(optimizer)
    inum.prepare(workload, pool)
    return workload, inum, pool


def test_workload_cost_tensor_speedup(bench_record):
    workload, inum, pool = _setup()
    rng = random.Random(7)

    def fresh_configurations(count: int) -> list[Configuration]:
        return [Configuration(rng.sample(pool, CANDIDATE_COUNT * 3 // 5))
                for _ in range(count)]

    # Headline correctness claim: bit-identical costs on every tested
    # configuration (empty, full and random subsets).
    for configuration in (Configuration(), Configuration(pool),
                          *fresh_configurations(10)):
        assert (inum.workload_cost(workload, configuration)
                == _per_query_workload_cost(inum, workload, configuration))

    # Cold pattern: every probe is a distinct, never-seen configuration.
    # GC is paused around the timed loops: both sides allocate enough to
    # trigger collections, and a full-suite run carries a heap large enough
    # (hundreds of collected tests, session fixtures) that gen-2 pauses
    # inside the sub-millisecond tensor reductions would otherwise dominate
    # the measurement — the benchmark compares costing paths, not the
    # garbage collector.
    slow_probes = fresh_configurations(COLD_PROBES)
    fast_probes = fresh_configurations(COLD_PROBES)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for configuration in slow_probes:
            _per_query_workload_cost(inum, workload, configuration)
        cold_slow = (time.perf_counter() - started) / COLD_PROBES
        started = time.perf_counter()
        for configuration in fast_probes:
            inum.workload_cost(workload, configuration)
        cold_fast = (time.perf_counter() - started) / COLD_PROBES
    finally:
        gc.enable()
    cold_speedup = cold_slow / cold_fast

    # Warm pattern: a fixed probe pool re-costed round after round (what
    # advisor loops do); both sides serve repeats from their caches.
    warm_pool = fresh_configurations(WARM_POOL)
    for configuration in warm_pool:  # warm both paths
        inum.workload_cost(workload, configuration)
        _per_query_workload_cost(inum, workload, configuration)
    warm_slow = min(
        _timed(lambda: [_per_query_workload_cost(inum, workload, c)
                        for c in warm_pool])
        for _ in range(WARM_ROUNDS)) / WARM_POOL
    warm_fast = min(
        _timed(lambda: [inum.workload_cost(workload, c) for c in warm_pool])
        for _ in range(WARM_ROUNDS)) / WARM_POOL
    warm_speedup = warm_slow / warm_fast

    tensor = inum.workload_tensor(workload)
    print_report(
        "Workload costing microbenchmark (gamma tensor vs per-query loop)",
        f"workload: {QUERY_COUNT} TPC-H statements, "
        f"{CANDIDATE_COUNT}-candidate pool, tensor {tensor.shape} "
        f"({tensor.nbytes / 1e6:.1f} MB)\n"
        f"cold (fresh configurations):\n"
        f"  per-query loop: {cold_slow * 1e3:8.3f} ms / workload_cost\n"
        f"  tensor:         {cold_fast * 1e3:8.3f} ms / workload_cost\n"
        f"  speedup:        {cold_speedup:8.1f}x (target >= "
        f"{TARGET_SPEEDUP:.0f}x)\n"
        f"warm (memoized probe pool):\n"
        f"  per-query loop: {warm_slow * 1e3:8.3f} ms / workload_cost\n"
        f"  tensor:         {warm_fast * 1e3:8.3f} ms / workload_cost\n"
        f"  speedup:        {warm_speedup:8.1f}x")
    bench_record(
        "workload_cost_tensor",
        queries=QUERY_COUNT,
        candidates=CANDIDATE_COUNT,
        cold_per_query_ms=round(cold_slow * 1e3, 4),
        cold_tensor_ms=round(cold_fast * 1e3, 4),
        cold_speedup=round(cold_speedup, 2),
        warm_per_query_ms=round(warm_slow * 1e3, 4),
        warm_tensor_ms=round(warm_fast * 1e3, 4),
        warm_speedup=round(warm_speedup, 2),
        target_speedup=TARGET_SPEEDUP,
    )
    assert cold_speedup >= TARGET_SPEEDUP, (
        f"tensor workload_cost only {cold_speedup:.1f}x faster on fresh "
        f"configurations (expected >= {TARGET_SPEEDUP}x)")


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_parallel_matrix_build_matches_serial(bench_record):
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(QUERY_COUNT, seed=11)
    pool = list(CandidateGenerator(schema).generate(workload))[:CANDIDATE_COUNT]

    serial = InumCache(WhatIfOptimizer(schema), build_workers=1)
    serial_seconds = _timed(lambda: serial.prepare(workload, pool))
    workers = os.cpu_count() or 1
    parallel = InumCache(WhatIfOptimizer(schema))  # build_workers=os.cpu_count()
    parallel_seconds = _timed(lambda: parallel.prepare(workload, pool))
    ratio = serial_seconds / max(parallel_seconds, 1e-9)

    # The two builds must be indistinguishable: same templates, same arrays,
    # same costs.
    assert serial.template_build_calls == parallel.template_build_calls
    for statement in workload:
        shell = serial._shell(statement.query)
        assert np.array_equal(serial.gamma_matrix(shell).array,
                              parallel.gamma_matrix(shell).array)
    configuration = Configuration(pool)
    assert (serial.workload_cost(workload, configuration)
            == parallel.workload_cost(workload, configuration))

    print_report(
        "Gamma-matrix build: parallel vs serial",
        f"workload: {QUERY_COUNT} statements, {len(pool)} candidates, "
        f"{workers} workers\n"
        f"serial build:   {serial_seconds * 1e3:8.1f} ms\n"
        f"parallel build: {parallel_seconds * 1e3:8.1f} ms\n"
        f"ratio:          {ratio:8.2f}x (build is GIL-bound Python; "
        f"expect ~1x on one core)")
    bench_record(
        "gamma_matrix_parallel_build",
        queries=QUERY_COUNT,
        candidates=len(pool),
        workers=workers,
        serial_ms=round(serial_seconds * 1e3, 2),
        parallel_ms=round(parallel_seconds * 1e3, 2),
        speedup=round(ratio, 2),
    )
    # Non-regression: threading must never make the build meaningfully
    # slower than the serial loop (the gain depends on cores and on how
    # much of the optimizer work releases the GIL).
    assert parallel_seconds <= serial_seconds * 1.6 + 0.05, (
        f"parallel build regressed: {parallel_seconds:.3f}s vs "
        f"{serial_seconds:.3f}s serial")
