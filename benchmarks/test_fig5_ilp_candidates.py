"""Figure 5 — CoPhy vs. ILP execution time as the candidate set grows.

Paper values (seconds, W_hom_1000), broken into INUM / build / solve:

    |S| = 500:    ILP 1560   CoPhy 301
    |S| = 1000:   ILP 1753   CoPhy 331
    |S| = 1933:   ILP 2419   CoPhy 479
    |S| = 10000:  ILP 8162   CoPhy 730

Reproduced shape: ILP's total time is dominated by the build phase (pruning
and costing candidate atomic configurations) and grows much faster with |S|
than CoPhy's; CoPhy stays several times faster at every candidate-set size.
The candidate-set sizes are scaled to the reduced workload: fractions of the
full CGen output plus a padded set with random extra indexes.
"""

from __future__ import annotations

import random

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.reporting import format_table
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.index import Index
from repro.workload.generators import generate_homogeneous_workload

_PAPER_SECONDS = {"S500": (1560, 301), "S1000": (1753, 331),
                  "SALL": (2419, 479), "SL": (8162, 730)}


def _padded_candidates(schema, base: CandidateSet, extra: int, seed: int) -> list[Index]:
    """SALL plus `extra` random single/two-column indexes (the paper's S_L)."""
    rng = random.Random(seed)
    indexes = list(base)
    tables = [t for t in schema if len(t.columns) >= 2]
    while len(indexes) < len(base) + extra:
        table = rng.choice(tables)
        columns = rng.sample([c.name for c in table.columns],
                             k=rng.randint(1, min(2, len(table.columns))))
        candidate = Index(table.name, tuple(columns))
        if candidate not in indexes:
            indexes.append(candidate)
    return indexes


def _run_fig5():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[1000], seed=SEED)

    probe = make_advisor("cophy", schema)
    full = probe.generate_candidates(workload)
    all_indexes = list(full)
    candidate_sets = {
        "S500": CandidateSet(schema, all_indexes[: max(10, len(all_indexes) // 4)]),
        "S1000": CandidateSet(schema, all_indexes[: max(20, len(all_indexes) // 2)]),
        "SALL": CandidateSet(schema, all_indexes),
        "SL": CandidateSet(schema, _padded_candidates(schema, full,
                                                      len(all_indexes), SEED)),
    }

    rows = []
    totals: dict[str, dict[str, float]] = {"cophy": {}, "ilp": {}}
    builds: dict[str, dict[str, float]] = {"cophy": {}, "ilp": {}}
    for label, candidates in candidate_sets.items():
        cophy = make_advisor("cophy", schema).tune(workload, [budget],
                                          candidates=candidates)
        ilp = make_advisor("ilp", schema).tune(workload, [budget], candidates=candidates)
        for name, recommendation in (("cophy", cophy), ("ilp", ilp)):
            totals[name][label] = recommendation.total_seconds
            builds[name][label] = recommendation.timings.get("build", 0.0)
            paper_ilp, paper_cophy = _PAPER_SECONDS[label]
            rows.append({
                "candidate set": label,
                "|S|": len(candidates),
                "advisor": name,
                "paper seconds": paper_ilp if name == "ilp" else paper_cophy,
                "measured s": round(recommendation.total_seconds, 2),
                "inum s": round(recommendation.timings.get("inum", 0.0), 2),
                "build s": round(recommendation.timings.get("build", 0.0), 2),
                "solve s": round(recommendation.timings.get("solve", 0.0), 2),
            })
    return rows, totals, builds


def test_fig5_ilp_vs_candidate_set_size(benchmark):
    rows, totals, builds = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)
    print_report("Figure 5: CoPhy vs ILP across candidate-set sizes",
                 format_table(rows))

    for label in ("S500", "S1000", "SALL", "SL"):
        # CoPhy is never slower than ILP (at the smallest set the two BIPs are
        # nearly the same size and — with vectorized INUM costing — both build
        # in milliseconds, so the total is dominated by the INUM phase the two
        # advisors share; allow a generous tie margin for timing noise there).
        assert totals["cophy"][label] <= totals["ilp"][label] * 1.5
    for label in ("SALL", "SL"):
        # At realistic candidate-set sizes CoPhy is strictly, clearly faster.
        assert totals["cophy"][label] < 0.8 * totals["ilp"][label]
    # ILP's time is dominated by the build (pruning) phase at the largest size.
    assert builds["ilp"]["SL"] > 0.5 * totals["ilp"]["SL"]
    # The gap widens as the candidate set grows.
    assert (totals["ilp"]["SL"] / totals["cophy"]["SL"]
            >= 0.8 * totals["ilp"]["S500"] / totals["cophy"]["S500"])
