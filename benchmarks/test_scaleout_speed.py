"""Benchmark: scale-out tuning (compress + partition + merge) vs one BIP.

The tentpole claim of the scale-out PR: on a 200-statement heterogeneous
workload, the divide-and-conquer pipeline — workload compression into
weighted representatives, ≥ 4 interaction-graph shards solved through the
process-pool executor, and a merge BIP over the per-shard winners —
recommends a configuration whose evaluated workload cost is within 5% of the
monolithic BIP's while the end-to-end tune runs at least 3x faster.

The workload is the compressible-plus-incompressible mix real systems see:
170 statements instantiated from the fifteen TPC-H templates with random
constants (what workload compression is for) blended with 30 ad-hoc C2-style
SPJ/aggregation statements from the ``W_het`` generator (which defeat
compression by construction — they ride through the pipeline uncompressed),
with ~10% UPDATE statements mixed in by both generators.

Both recommendations are evaluated with one fresh INUM cache (a single
workload-tensor reduction per configuration), so the quality comparison is
independent of either advisor's internal state.  On a single-core runner the
process pool degrades to inline shard solves — the measured speedup then
comes entirely from compression and the superlinear solve-time win of the
decomposition, which is exactly the algorithmic claim; multi-core machines
add the parallel win on top.
"""

from __future__ import annotations

import gc
import os
import time

from repro.api import make_advisor
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)
from repro.workload.workload import Workload

from benchmarks.conftest import SEED, make_schema, print_report, storage_budget

STATEMENT_COUNT = 200
TEMPLATED_COUNT = 170
ADHOC_COUNT = 30
SHARD_COUNT = 4
MAX_COST_ERROR = 1.0
TARGET_SPEEDUP = 3.0
QUALITY_BOUND = 1.05


def _mixed_workload() -> Workload:
    templated = generate_homogeneous_workload(TEMPLATED_COUNT, seed=SEED)
    adhoc = generate_heterogeneous_workload(ADHOC_COUNT, seed=SEED + 1)
    return Workload([*templated.statements, *adhoc.statements],
                    name=f"W_mixed_{STATEMENT_COUNT}")


def _best_of(rounds: int, tune):
    """Best wall-clock of ``rounds`` fresh tuning runs (robust to load spikes).

    Each round constructs a fresh advisor (fresh optimizer, INUM cache and
    solver state), so repetition only filters scheduler/GC noise — nothing
    is warm across rounds except the interpreter itself, identically for
    both competitors.
    """
    best_seconds, recommendation = float("inf"), None
    for _ in range(rounds):
        # Discarded rounds leave cyclic garbage (BIP models reference tens of
        # thousands of variables); collect it *outside* the timed region so
        # one competitor's leftovers never inflate the other's measurement.
        gc.collect()
        started = time.perf_counter()
        candidate = tune()
        elapsed = time.perf_counter() - started
        if elapsed < best_seconds:
            best_seconds, recommendation = elapsed, candidate
    return best_seconds, recommendation


def test_scaleout_quality_and_speed(bench_record):
    schema = make_schema(0.0)
    workload = _mixed_workload()
    assert len(workload) == STATEMENT_COUNT
    budget = storage_budget(schema, 0.5)

    monolithic_seconds, monolithic = _best_of(
        2, lambda: make_advisor("cophy", schema).tune(workload, constraints=[budget]))

    scaled_seconds, scaled = _best_of(
        2, lambda: make_advisor("scaleout", schema, signature="structural",
                                   max_cost_error=MAX_COST_ERROR,
                                   shard_count=SHARD_COUNT,
                                   shard_workers=os.cpu_count()).tune(
            workload, constraints=[budget]))
    speedup = monolithic_seconds / scaled_seconds

    compression = scaled.extras["compression"]
    partition = scaled.extras["partition"]
    assert partition["shards"] >= SHARD_COUNT
    assert compression["representatives"] < STATEMENT_COUNT

    # One fresh evaluator for both configurations: a single tensor reduction
    # per configuration, independent of either advisor's caches.
    evaluator = InumCache(WhatIfOptimizer(schema))
    evaluator.prepare(workload, (*monolithic.configuration,
                                 *scaled.configuration))
    monolithic_cost = evaluator.workload_cost(workload,
                                              monolithic.configuration)
    scaled_cost = evaluator.workload_cost(workload, scaled.configuration)
    quality = scaled_cost / monolithic_cost

    print_report(
        "Scale-out tuning vs monolithic BIP (200-statement mixed workload)",
        f"workload: {workload.summary()}\n"
        f"monolithic: {monolithic_seconds:6.2f}s, "
        f"{monolithic.index_count} indexes, "
        f"evaluated cost {monolithic_cost:,.0f}\n"
        f"scale-out:  {scaled_seconds:6.2f}s, "
        f"{scaled.index_count} indexes, "
        f"evaluated cost {scaled_cost:,.0f}\n"
        f"  representatives: {compression['representatives']} "
        f"(ratio {compression['ratio']:.2f}, "
        f"max_cost_error {MAX_COST_ERROR})\n"
        f"  shards: {partition['shards']} "
        f"({scaled.extras['shard_workers']} worker(s))\n"
        f"speedup:  {speedup:6.2f}x (target >= {TARGET_SPEEDUP:.0f}x)\n"
        f"quality:  {quality:6.4f}x monolithic cost "
        f"(bound <= {QUALITY_BOUND})")
    bench_record(
        "scaleout_tuning",
        statements=STATEMENT_COUNT,
        representatives=compression["representatives"],
        compression_ratio=compression["ratio"],
        shards=partition["shards"],
        shard_workers=scaled.extras["shard_workers"],
        monolithic_seconds=round(monolithic_seconds, 3),
        scaleout_seconds=round(scaled_seconds, 3),
        speedup=round(speedup, 2),
        cost_ratio=round(quality, 4),
        target_speedup=TARGET_SPEEDUP,
        quality_bound=QUALITY_BOUND,
    )

    assert quality <= QUALITY_BOUND, (
        f"scale-out recommendation costs {quality:.4f}x the monolithic one "
        f"(bound {QUALITY_BOUND}x)")
    assert speedup >= TARGET_SPEEDUP, (
        f"scale-out tune only {speedup:.2f}x faster than the monolithic BIP "
        f"(target {TARGET_SPEEDUP}x)")
