"""Figure 9 (appendix C.1) — quality on the heterogeneous workload (Tool-B vs CoPhy).

Paper values (% speedup on System B, W_het):

    Tool-B:  250 -> 58.4   500 -> 42.8   1000 -> 42.7
    CoPhyB:  250 -> 78.8   500 -> 69.6   1000 -> 69.6

Reproduced shape: on the heterogeneous workload the compression-based advisor
loses much more ground to CoPhy than on the homogeneous workload (compare with
Figure 7), because its random sample misses many of the distinct query shapes;
CoPhy also drops a little relative to the homogeneous workload but stays well
ahead at every size.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import compare_advisors
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)

_PAPER_SPEEDUPS = {
    "tool-b": {250: 58.4, 500: 42.8, 1000: 42.7},
    "cophy": {250: 78.8, 500: 69.6, 1000: 69.6},
}


def _run_fig9():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    evaluation = WhatIfOptimizer(schema)
    rows = []
    het_ratio = {}
    hom_ratio = {}
    for paper_size, size in WORKLOAD_SIZES.items():
        het = generate_heterogeneous_workload(size, seed=SEED)
        het_result = compare_advisors(
            [make_advisor("cophy", schema), make_advisor("dta", schema)], evaluation, het,
            [budget], name=f"fig9-het-{paper_size}")
        het_ratio[paper_size] = het_result.perf_ratio("cophy", "tool-b")

        hom = generate_homogeneous_workload(size, seed=SEED)
        hom_result = compare_advisors(
            [make_advisor("cophy", schema), make_advisor("dta", schema)], evaluation, hom,
            [budget], name=f"fig9-hom-{paper_size}")
        hom_ratio[paper_size] = hom_result.perf_ratio("cophy", "tool-b")

        for run in het_result.runs:
            rows.append({
                "paper workload": paper_size,
                "advisor": run.advisor_name,
                "paper speedup %": _PAPER_SPEEDUPS[run.advisor_name][paper_size],
                "measured speedup %": round(run.speedup_percent, 1),
                "CoPhy/Tool-B (het)": round(het_ratio[paper_size], 2),
                "CoPhy/Tool-B (hom)": round(hom_ratio[paper_size], 2),
            })
    return rows, het_ratio, hom_ratio


def test_fig9_heterogeneous_workload(benchmark):
    rows, het_ratio, hom_ratio = benchmark.pedantic(_run_fig9, rounds=1,
                                                    iterations=1)
    print_report("Figure 9: heterogeneous-workload quality (Tool-B vs CoPhy)",
                 format_table(rows))

    for paper_size in WORKLOAD_SIZES:
        # CoPhy stays ahead of Tool-B on the heterogeneous workload...
        assert het_ratio[paper_size] >= 1.0
    # ...and the average gap is wider than on the homogeneous workload, where
    # compression by sampling works well (the paper's central point here).
    mean_het = sum(het_ratio.values()) / len(het_ratio)
    mean_hom = sum(hom_ratio.values()) / len(hom_ratio)
    assert mean_het >= mean_hom - 0.05
