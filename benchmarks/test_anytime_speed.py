"""Benchmark: the anytime tiers on a 200-statement mixed workload.

Two claims from the anytime-tuning PR are measured here:

* **The heuristic tier is a real shortcut.**  The greedy-knapsack pass
  (``solve_tier="heuristic"``) never builds the BIP; on the same
  200-statement workload the scale-out benchmark uses, it must recommend a
  configuration whose *evaluated* workload cost is within
  ``QUALITY_BOUND`` of the exact BIP's while tuning at least
  ``TARGET_SPEEDUP``x faster end to end (both runs pay the same INUM
  preparation, so the speedup is pure solve-stage economics).
* **Deadlines are honored.**  Against a warm schema context, a
  ``time_budget_ms=250`` cascade request returns a flagged
  (``timed_out=True``), finite-gap result within ``2x`` its budget —
  the acceptance bar of the PR.

Both recommendations are evaluated with one fresh INUM cache so the quality
comparison is independent of either tier's internal state.
"""

from __future__ import annotations

import math
import time

from repro.api import AdvisorSpec, Tuner, TuningRequest, make_advisor
from repro.core.constraints import StorageBudgetConstraint
from repro.inum.cache import InumCache
from repro.lp import SolveBudget
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)
from repro.workload.workload import Workload

from benchmarks.conftest import SEED, make_schema, print_report, storage_budget
from benchmarks.test_scaleout_speed import _best_of

STATEMENT_COUNT = 200
TEMPLATED_COUNT = 170
ADHOC_COUNT = 30
# Measured ~2.4x in isolation, but both tiers pay the same INUM preparation
# and full-suite heap pressure inflates that shared term, compressing the
# end-to-end ratio — so the asserted floor keeps slack below the typical
# measurement.  The recorded value tracks the real trajectory either way.
TARGET_SPEEDUP = 1.5
QUALITY_BOUND = 1.25
BUDGET_MS = 250.0
DEADLINE_FACTOR = 2.0


def _mixed_workload() -> Workload:
    templated = generate_homogeneous_workload(TEMPLATED_COUNT, seed=SEED)
    adhoc = generate_heterogeneous_workload(ADHOC_COUNT, seed=SEED + 1)
    return Workload([*templated.statements, *adhoc.statements],
                    name=f"W_mixed_{STATEMENT_COUNT}")


def test_heuristic_tier_quality_and_speed(bench_record):
    schema = make_schema(0.0)
    workload = _mixed_workload()
    assert len(workload) == STATEMENT_COUNT
    budget = storage_budget(schema, 0.5)

    exact_seconds, exact = _best_of(
        2, lambda: make_advisor("cophy", schema).tune(
            workload, constraints=[budget]))

    heuristic_seconds, heuristic = _best_of(
        2, lambda: make_advisor("cophy", schema).tune(
            workload, constraints=[budget],
            budget=SolveBudget(tier="heuristic")))
    speedup = exact_seconds / heuristic_seconds

    assert heuristic.solve_tier == "heuristic"
    assert not heuristic.timed_out  # no deadline: the pass ran to completion

    # One fresh evaluator for both configurations: a single tensor reduction
    # per configuration, independent of either tier's caches.
    evaluator = InumCache(WhatIfOptimizer(schema))
    evaluator.prepare(workload, (*exact.configuration,
                                 *heuristic.configuration))
    exact_cost = evaluator.workload_cost(workload, exact.configuration)
    heuristic_cost = evaluator.workload_cost(workload,
                                             heuristic.configuration)
    cost_ratio = heuristic_cost / exact_cost

    print_report(
        "Anytime heuristic tier vs exact BIP (200-statement mixed workload)",
        f"workload:  {workload.summary()}\n"
        f"exact:     {exact_seconds:6.2f}s, {exact.index_count} indexes, "
        f"evaluated cost {exact_cost:,.0f}\n"
        f"heuristic: {heuristic_seconds:6.2f}s, "
        f"{heuristic.index_count} indexes, "
        f"evaluated cost {heuristic_cost:,.0f}\n"
        f"  greedy probes: {heuristic.extras['heuristic']['probes']}, "
        f"reported gap {heuristic.gap:.3f}\n"
        f"speedup:   {speedup:6.2f}x (target >= {TARGET_SPEEDUP:.0f}x)\n"
        f"quality:   {cost_ratio:6.4f}x exact cost "
        f"(bound <= {QUALITY_BOUND})")
    bench_record(
        "anytime_heuristic_tier",
        statements=STATEMENT_COUNT,
        exact_seconds=round(exact_seconds, 3),
        heuristic_seconds=round(heuristic_seconds, 3),
        greedy_probes=heuristic.extras["heuristic"]["probes"],
        speedup=round(speedup, 2),
        cost_ratio=round(cost_ratio, 4),
        target_speedup=TARGET_SPEEDUP,
        quality_bound=QUALITY_BOUND,
    )

    assert cost_ratio <= QUALITY_BOUND, (
        f"heuristic recommendation costs {cost_ratio:.4f}x the exact one "
        f"(bound {QUALITY_BOUND}x)")
    assert speedup >= TARGET_SPEEDUP, (
        f"heuristic tier only {speedup:.2f}x faster than the exact BIP "
        f"(target {TARGET_SPEEDUP}x)")


def test_deadline_honored_on_warm_context(bench_record):
    schema = make_schema(0.0)
    workload = _mixed_workload()
    budget = storage_budget(schema, 0.5)

    tuner = Tuner()
    # Warm the schema context (templates, gamma matrices, tensors) with a
    # heuristic-tier pass; the deadline below then measures solve economics,
    # not one-time preparation.
    tuner.tune(TuningRequest(
        workload=workload, schema=schema, constraints=[budget],
        advisor=AdvisorSpec("cophy", solve_tier="heuristic")))

    started = time.perf_counter()
    result = tuner.tune(TuningRequest(
        workload=workload, schema=schema, constraints=[budget],
        advisor=AdvisorSpec("cophy", time_budget_ms=BUDGET_MS)))
    elapsed = time.perf_counter() - started

    bound_seconds = DEADLINE_FACTOR * BUDGET_MS / 1000.0
    print_report(
        "Anytime deadline on a warm context (200-statement mixed workload)",
        f"budget:   {BUDGET_MS:.0f} ms (cascade tier)\n"
        f"elapsed:  {elapsed * 1000:6.1f} ms "
        f"(bound <= {bound_seconds * 1000:.0f} ms)\n"
        f"timed_out: {result.diagnostics.timed_out}, "
        f"solve_tier: {result.diagnostics.solve_tier}, "
        f"gap: {result.diagnostics.gap:.3f}\n"
        f"recommendation: {result.index_count} indexes, "
        f"objective {result.objective_estimate:,.0f}")
    bench_record(
        "anytime_deadline_250ms",
        statements=STATEMENT_COUNT,
        budget_ms=BUDGET_MS,
        elapsed_ms=round(elapsed * 1000, 1),
        deadline_factor=DEADLINE_FACTOR,
        timed_out=result.diagnostics.timed_out,
        reported_gap=round(result.diagnostics.gap, 4),
    )

    assert elapsed <= bound_seconds, (
        f"250 ms budget answered in {elapsed * 1000:.0f} ms "
        f"(bound {bound_seconds * 1000:.0f} ms)")
    assert result.diagnostics.timed_out
    assert math.isfinite(result.diagnostics.gap)
    assert math.isfinite(result.objective_estimate)
