"""Table 1 — CoPhy vs. the commercial advisors across data skew and workload kind.

Paper values (ratio of perf improvements, >1 means CoPhy's configuration is
better):

    z=0, W_hom_1000:  CoPhyA/ToolA = 2.10   CoPhyB/ToolB = 1.03
    z=0, W_het_1000:  CoPhyA/ToolA = 2.29   CoPhyB/ToolB = 1.64
    z=2, W_hom_1000:  CoPhyA/ToolA = 1.37   CoPhyB/ToolB = 1.02
    z=2, W_het_1000:  Tool-A timed out      CoPhyB/ToolB = 1.58

Here Tool-A is the relaxation-based advisor and Tool-B the compression-based
advisor; the reproduced claim is the *shape*: every ratio is >= 1, the gap to
Tool-B is larger on the heterogeneous workload than on the homogeneous one,
and skew narrows the gaps.
"""

from __future__ import annotations

from benchmarks.conftest import (
    SEED,
    WORKLOAD_SIZES,
    make_schema,
    print_report,
    storage_budget,
)
from repro.api import make_advisor
from repro.bench.harness import compare_advisors
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)

_PAPER_ROWS = {
    (0.0, "hom"): {"cophy/tool-a": 2.10, "cophy/tool-b": 1.03},
    (0.0, "het"): {"cophy/tool-a": 2.29, "cophy/tool-b": 1.64},
    (2.0, "hom"): {"cophy/tool-a": 1.37, "cophy/tool-b": 1.02},
    (2.0, "het"): {"cophy/tool-a": None, "cophy/tool-b": 1.58},
}


def _run_table1():
    size = WORKLOAD_SIZES[1000]
    rows = []
    ratios = {}
    for skew in (0.0, 2.0):
        schema = make_schema(skew)
        evaluation = WhatIfOptimizer(schema)
        budget = storage_budget(schema, 1.0)
        for kind, generator in (("hom", generate_homogeneous_workload),
                                ("het", generate_heterogeneous_workload)):
            workload = generator(size, seed=SEED)
            result = compare_advisors(
                [make_advisor("cophy", schema), make_advisor("relaxation", schema),
                 make_advisor("dta", schema)],
                evaluation, workload, [budget], name=f"table1-z{skew}-{kind}")
            ratio_a = result.perf_ratio("cophy", "tool-a")
            ratio_b = result.perf_ratio("cophy", "tool-b")
            ratios[(skew, kind)] = (ratio_a, ratio_b)
            paper = _PAPER_ROWS[(skew, kind)]
            rows.append({
                "skew z": skew,
                "workload": f"W_{kind}_{size}",
                "CoPhy/Tool-A (paper)": paper["cophy/tool-a"] or "timeout",
                "CoPhy/Tool-A (measured)": round(ratio_a, 2),
                "CoPhy/Tool-B (paper)": paper["cophy/tool-b"],
                "CoPhy/Tool-B (measured)": round(ratio_b, 2),
            })
    return rows, ratios


def test_table1_commercial_quality(benchmark):
    rows, ratios = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    print_report("Table 1: CoPhy vs commercial advisors (perf ratios)",
                 format_table(rows))

    # Shape assertions: CoPhy is never worse than either tool...
    for (skew, kind), (ratio_a, ratio_b) in ratios.items():
        assert ratio_a >= 0.95, f"Tool-A beat CoPhy at z={skew}, {kind}"
        assert ratio_b >= 0.95, f"Tool-B beat CoPhy at z={skew}, {kind}"
    # ... and the gap to the compression-based advisor is wider on the
    # heterogeneous workload than on the homogeneous one (both skew levels).
    for skew in (0.0, 2.0):
        assert ratios[(skew, "het")][1] >= ratios[(skew, "hom")][1] - 0.05
