"""Figure 4 — execution time of CoPhy vs. the commercial advisors vs. workload size.

Paper values (minutes, homogeneous workload, z = 0):

    Tool-A:  250 -> 6.2    500 -> 66.1   1000 -> 419
    CoPhyA:  250 -> 2      500 -> 4.8    1000 -> 8.3
    Tool-B:  250 -> 3.2    500 -> 6.1    1000 -> (not shown, ~2x CoPhyB)
    CoPhyB:  250 -> 1.25   1000 -> 2.26

Reproduced shape: CoPhy's execution time grows slowly with the workload size
and is the smallest for the larger workloads; the Tool-A-like advisor grows
much faster (it is driven by per-candidate what-if evaluation), and the
Tool-B-like advisor sits in between thanks to workload compression.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import run_advisor
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload

_PAPER_MINUTES = {
    "tool-a": {250: 6.2, 500: 66.1, 1000: 419.0},
    "cophy": {250: 2.0, 500: 4.8, 1000: 8.3},
    "tool-b": {250: 3.2, 500: 6.1, 1000: 12.0},
}


def _run_fig4():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    rows = []
    times: dict[str, dict[int, float]] = {"cophy": {}, "tool-a": {}, "tool-b": {}}
    for paper_size, size in WORKLOAD_SIZES.items():
        workload = generate_homogeneous_workload(size, seed=SEED)
        evaluation = WhatIfOptimizer(schema)
        for advisor in (make_advisor("cophy", schema), make_advisor("relaxation", schema),
                        make_advisor("dta", schema)):
            run = run_advisor(advisor, evaluation, workload, [budget])
            times[advisor.name][paper_size] = run.recommendation.total_seconds
            rows.append({
                "paper workload": paper_size,
                "reduced workload": size,
                "advisor": advisor.name,
                "paper minutes": _PAPER_MINUTES[advisor.name][paper_size],
                "measured seconds": round(run.recommendation.total_seconds, 2),
            })
    return rows, times


def test_fig4_commercial_execution_time(benchmark):
    rows, times = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    print_report("Figure 4: execution time vs workload size", format_table(rows))

    largest = max(WORKLOAD_SIZES)
    smallest = min(WORKLOAD_SIZES)
    # CoPhy is the fastest technique for the larger workloads (paper: fastest
    # for 500 and 1000 queries, at least 10x faster than Tool-A).
    assert times["cophy"][largest] < times["tool-a"][largest]
    assert times["cophy"][largest] < times["tool-b"][largest]
    assert times["tool-a"][largest] / times["cophy"][largest] > 3.0
    # Tool-A's cost grows much faster with the workload than CoPhy's: the
    # absolute time it adds when the workload quadruples dwarfs CoPhy's.
    cophy_increase = times["cophy"][largest] - times["cophy"][smallest]
    tool_a_increase = times["tool-a"][largest] - times["tool-a"][smallest]
    assert tool_a_increase > 2.0 * max(cophy_increase, 0.0)
