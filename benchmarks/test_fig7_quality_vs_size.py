"""Figure 7 (appendix C.1) — solution quality vs. workload size, homogeneous workload.

Paper values (% speedup over the clustered-PK baseline):

    System A:  Tool-A 35 / 32 / 29      CoPhyA 61 / 61 / 61     (250 / 500 / 1000)
    System B:  Tool-B 94.1 / 93.9 / 93.75   CoPhyB 96.7 / 96.7 / 96.7

Reproduced shape: CoPhy's quality is stable across workload sizes and always
at least as good as both tools; the Tool-A-like advisor's quality degrades as
the workload grows (its evaluation budget forces scale-down), while the
Tool-B-like advisor stays closer to CoPhy.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.harness import compare_advisors
from repro.bench.reporting import format_table
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import generate_homogeneous_workload

_PAPER_SPEEDUPS = {
    "tool-a": {250: 35.0, 500: 32.0, 1000: 29.0},
    "cophy": {250: 61.0, 500: 61.0, 1000: 61.0},
    "tool-b": {250: 94.1, 500: 93.9, 1000: 93.75},
}


def _run_fig7():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    evaluation = WhatIfOptimizer(schema)
    rows = []
    speedups: dict[str, dict[int, float]] = {"cophy": {}, "tool-a": {}, "tool-b": {}}
    for paper_size, size in WORKLOAD_SIZES.items():
        workload = generate_homogeneous_workload(size, seed=SEED)
        result = compare_advisors(
            [make_advisor("cophy", schema), make_advisor("relaxation", schema), make_advisor("dta", schema)],
            evaluation, workload, [budget], name=f"fig7-{paper_size}")
        for run in result.runs:
            speedups[run.advisor_name][paper_size] = run.speedup_percent
            rows.append({
                "paper workload": paper_size,
                "advisor": run.advisor_name,
                "paper speedup %": _PAPER_SPEEDUPS[run.advisor_name][paper_size],
                "measured speedup %": round(run.speedup_percent, 1),
            })
    return rows, speedups


def test_fig7_quality_vs_workload_size(benchmark):
    rows, speedups = benchmark.pedantic(_run_fig7, rounds=1, iterations=1)
    print_report("Figure 7: solution quality vs workload size (W_hom)",
                 format_table(rows))

    sizes = sorted(WORKLOAD_SIZES)
    for paper_size in sizes:
        # CoPhy produces the best (or tied-best) recommendation at every size.
        assert speedups["cophy"][paper_size] >= speedups["tool-a"][paper_size] - 1.0
        assert speedups["cophy"][paper_size] >= speedups["tool-b"][paper_size] - 1.0
    # CoPhy's quality is stable across workload sizes (paper: constant 61%).
    cophy_values = [speedups["cophy"][s] for s in sizes]
    assert max(cophy_values) - min(cophy_values) < 20.0
    # Tool-A trails CoPhy by a clear margin at the largest size.
    assert (speedups["cophy"][max(sizes)]
            >= speedups["tool-a"][max(sizes)] + 5.0)
