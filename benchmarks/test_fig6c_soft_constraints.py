"""Figure 6(c) — time to generate the Pareto-optimal curve for a soft constraint.

The paper replaces the hard storage budget with the soft constraint
``sum size(a) = 0`` and generates five representative Pareto points (lambda in
{0, 0.25, 0.5, 0.75, 1}).  The first point costs 293.5 seconds (it includes
INUM and the BIP build); the subsequent points cost 11-16 seconds each because
the solver reuses the earlier computation — a ~4x speed-up over re-computing
every point from scratch.

Reproduced shape: the first Pareto point is by far the most expensive; later
points are several times cheaper; the resulting points trace a monotone
storage-vs-cost trade-off.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.reporting import format_table
from repro.core.constraints import StorageBudgetConstraint
from repro.workload.generators import generate_homogeneous_workload

_PAPER_SECONDS = {0.0: 293.5, 0.25: 12.1, 0.5: 16.2, 0.75: 12.5, 1.0: 11.0}
_LAMBDAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _run_fig6c():
    schema = make_schema(0.0)
    workload = generate_homogeneous_workload(WORKLOAD_SIZES[1000], seed=SEED)
    advisor = make_advisor("cophy", schema)
    soft = StorageBudgetConstraint(0.0).soft(target=0.0)

    import time

    started = time.perf_counter()
    bip = advisor.build_bip(workload)
    setup_seconds = time.perf_counter() - started

    from repro.core.soft_constraints import ParetoExplorer

    explorer = ParetoExplorer(advisor.solver)
    points = explorer.explore(bip, [soft], lambdas=_LAMBDAS)

    rows = []
    for position, point in enumerate(points):
        measured = point.solve_seconds + (setup_seconds if position == 0 else 0.0)
        rows.append({
            "lambda": point.lambda_value,
            "paper seconds": _PAPER_SECONDS[point.lambda_value],
            "measured s": round(measured, 3),
            "workload cost": round(point.workload_cost, 1),
            "storage MB": round(point.measure / 1e6, 2),
            "warm started": point.warm_started,
        })
    return rows, points, setup_seconds


def test_fig6c_soft_constraint_pareto(benchmark):
    rows, points, setup_seconds = benchmark.pedantic(_run_fig6c, rounds=1,
                                                     iterations=1)
    print_report("Figure 6(c): Pareto curve generation for a soft storage "
                 "constraint", format_table(rows))

    first_cost = points[0].solve_seconds + setup_seconds
    later_costs = [point.solve_seconds for point in points[1:]]
    # The first point carries the INUM + build cost; later points are much cheaper.
    assert max(later_costs) < first_cost
    assert min(later_costs) < 0.5 * first_cost
    # All later points reuse the previous solution as a warm start.
    assert all(point.warm_started for point in points[1:])
    # The trade-off is monotone: more weight on workload cost (larger lambda)
    # never increases cost and never decreases storage.
    costs = [point.workload_cost for point in points]
    storages = [point.measure for point in points]
    assert all(b <= a + 1e-6 for a, b in zip(costs, costs[1:]))
    assert all(b >= a - 1e-6 for a, b in zip(storages, storages[1:]))
