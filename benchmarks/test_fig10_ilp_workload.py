"""Figure 10 (appendix C.2) — CoPhy vs. ILP execution time vs. workload size.

Paper values (seconds):

    ILP:    250 -> 710    500 -> 1379   1000 -> 2399
    CoPhy:  250 -> 123    500 -> 293    1000 -> 499

Reproduced shape: CoPhy is several times faster than ILP at every workload
size (the paper reports at least 5x, an order of magnitude once the shared
INUM time is excluded), and ILP's time is dominated by building/pruning the
atomic-configuration space.
"""

from __future__ import annotations

from benchmarks.conftest import SEED, WORKLOAD_SIZES, make_schema, print_report, storage_budget
from repro.api import make_advisor
from repro.bench.reporting import format_table
from repro.workload.generators import generate_homogeneous_workload

_PAPER_SECONDS = {"ilp": {250: 710, 500: 1379, 1000: 2399},
                  "cophy": {250: 123, 500: 293, 1000: 499}}


def _run_fig10():
    schema = make_schema(0.0)
    budget = storage_budget(schema, 1.0)
    rows = []
    totals: dict[str, dict[int, float]] = {"cophy": {}, "ilp": {}}
    ex_inum: dict[str, dict[int, float]] = {"cophy": {}, "ilp": {}}
    for paper_size, size in WORKLOAD_SIZES.items():
        workload = generate_homogeneous_workload(size, seed=SEED)
        cophy = make_advisor("cophy", schema).tune(workload, [budget])
        ilp = make_advisor("ilp", schema).tune(workload, [budget])
        for name, recommendation in (("cophy", cophy), ("ilp", ilp)):
            totals[name][paper_size] = recommendation.total_seconds
            ex_inum[name][paper_size] = (recommendation.total_seconds
                                         - recommendation.timings.get("inum", 0.0))
            rows.append({
                "paper workload": paper_size,
                "advisor": name,
                "paper seconds": _PAPER_SECONDS[name][paper_size],
                "measured s": round(recommendation.total_seconds, 2),
                "build s": round(recommendation.timings.get("build", 0.0), 2),
                "solve s": round(recommendation.timings.get("solve", 0.0), 2),
            })
    return rows, totals, ex_inum


def test_fig10_ilp_vs_workload_size(benchmark):
    rows, totals, ex_inum = benchmark.pedantic(_run_fig10, rounds=1, iterations=1)
    print_report("Figure 10: CoPhy vs ILP execution time across workload sizes",
                 format_table(rows))

    for paper_size in WORKLOAD_SIZES:
        # CoPhy is faster than ILP at every workload size.
        assert totals["cophy"][paper_size] < totals["ilp"][paper_size]
    largest = max(WORKLOAD_SIZES)
    # Excluding the INUM time shared by both, the gap is large (paper: ~10x).
    assert ex_inum["ilp"][largest] / max(ex_inum["cophy"][largest], 1e-9) > 3.0
